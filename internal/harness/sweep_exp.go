package harness

import (
	"fmt"

	"mobilehpc/internal/apps/specfem"
	"mobilehpc/internal/cluster"
	"mobilehpc/internal/interconnect"
	"mobilehpc/internal/soc"
)

func init() {
	register(Experiment{
		ID:    "fig7sweep",
		Title: "Full message-size sweep behind Figure 7's curves",
		Paper: "Figure 7 (data series)",
		Run:   runFig7Sweep,
	})
	register(Experiment{
		ID:    "hetero",
		Title: "Heterogeneous cluster: mobile + conventional nodes",
		Paper: "§2 (FAWN follow-up [25]) what-if",
		Run:   runHetero,
	})
}

// runFig7Sweep emits the actual data series of Figure 7: latency for
// the 0-64 B x-axis of the top row and bandwidth for the 1 B-16 MiB
// log axis of the bottom row, per configuration.
func runFig7Sweep(o Options) *Table {
	t := &Table{
		ID: "fig7sweep", Title: "Ping-pong series (latency µs / bandwidth MB/s)",
		Paper:   "Figure 7",
		Columns: []string{"size", "T2 TCP", "T2 OMX", "Ex5 TCP 1.0", "Ex5 OMX 1.0", "Ex5 TCP 1.4", "Ex5 OMX 1.4"},
	}
	t2 := soc.Tegra2()
	ex := soc.Exynos5250()
	eps := []interconnect.Endpoint{
		{Platform: t2, FGHz: 1.0, Proto: interconnect.TCPIP()},
		{Platform: t2, FGHz: 1.0, Proto: interconnect.OpenMX()},
		{Platform: ex, FGHz: 1.0, Proto: interconnect.TCPIP()},
		{Platform: ex, FGHz: 1.0, Proto: interconnect.OpenMX()},
		{Platform: ex, FGHz: 1.4, Proto: interconnect.TCPIP()},
		{Platform: ex, FGHz: 1.4, Proto: interconnect.OpenMX()},
	}
	// Materialise both axes up front so the per-size evaluations can
	// fan out to the pool and still merge in axis order.
	latSizes := []int{0, 8, 16, 24, 32, 40, 48, 56, 64}
	var bwSizes []int
	for m := 1; m <= 16<<20; m *= 4 {
		bwSizes = append(bwSizes, m)
	}
	// Latency rows: the figure's 0-64 byte axis.
	for _, row := range parmapObs("subrun",
		func(i int) string { return fmt.Sprintf("fig7sweep/lat/%dB", latSizes[i]) },
		o.Jobs, len(latSizes), func(i int) []string {
			m := latSizes[i]
			cells := []string{fmt.Sprintf("%dB (lat)", m)}
			for _, e := range eps {
				cells = append(cells, fmt.Sprintf("%.1f", interconnect.OneWayLatency(e, m, 1.0)*1e6))
			}
			return cells
		}) {
		t.AddRow(row...)
	}
	// Bandwidth rows: powers of four across the figure's log axis.
	for _, row := range parmapObs("subrun",
		func(i int) string { return "fig7sweep/bw/" + fmtBytes(bwSizes[i]) },
		o.Jobs, len(bwSizes), func(i int) []string {
			m := bwSizes[i]
			cells := []string{fmtBytes(m) + " (bw)"}
			for _, e := range eps {
				cells = append(cells, fmt.Sprintf("%.1f", interconnect.EffectiveBandwidth(e, m, 1.0)))
			}
			return cells
		}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"top block: one-way latency in µs (flat to 64 B, as in the figure)",
		"bottom block: effective bandwidth in MB/s; the Open-MX rendezvous step shows at 32 KiB")
	return t
}

func fmtBytes(m int) string {
	switch {
	case m >= 1<<20:
		return fmt.Sprintf("%dMiB", m>>20)
	case m >= 1<<10:
		return fmt.Sprintf("%dKiB", m>>10)
	}
	return fmt.Sprintf("%dB", m)
}

// runHetero explores the §2 FAWN follow-up: "future research in
// heterogeneous clusters using low-power nodes combined with
// conventional ones". A BSP application on a mixed Tegra2 + i7
// machine is dominated by the slow nodes under a uniform split; a
// peak-proportional split restores the balance.
func runHetero(o Options) *Table {
	t := &Table{
		ID: "hetero", Title: "SPECFEM on 8 Tegra2 + 2 i7 nodes: work distribution",
		Paper:   "§2 what-if",
		Columns: []string{"distribution", "elapsed (s)", "vs uniform"},
	}
	steps := 20
	if o.Quick {
		steps = 6
	}
	const elems = 200000

	hetero := func() *cluster.Cluster {
		cl := cluster.New(cluster.Config{
			Nodes: 10, Platform: soc.Tegra2, FGHz: 1.0,
			Proto: interconnect.TCPIP(), LinkGbps: 1.0, SwitchLatUS: 2.0,
		})
		for i := 8; i < 10; i++ {
			p := soc.CoreI7()
			cl.Nodes[i].Platform = p
			cl.Nodes[i].FGHz = p.MaxFreq()
		}
		return cl
	}

	// Peak-proportional weights for the second split.
	weights := make([]float64, 10)
	for i := 0; i < 10; i++ {
		var p *soc.Platform
		if i < 8 {
			p = soc.Tegra2()
		} else {
			p = soc.CoreI7()
		}
		weights[i] = p.PeakGFLOPSMax()
	}

	// Uniform split (nil weights): every node gets elems/10 — the i7s
	// finish early and idle at each assembly step. Both splits run on
	// their own cluster, so they can share the pool.
	splits := [][]float64{nil, weights}
	splitName := []string{"hetero/uniform", "hetero/proportional"}
	runs := parmapObs("subrun",
		func(i int) string { return splitName[i] },
		o.Jobs, len(splits), func(i int) specfem.Result {
			return specfem.RunWeighted(hetero(), 10, specfem.Config{
				Elements: elems, Steps: steps, RealElements: 16, Threads: 8}, splits[i])
		})
	uni, prop := runs[0], runs[1]

	t.AddRowf("uniform|%.3f|1.00x", uni.Elapsed)
	t.AddRowf("peak-proportional|%.3f|%.2fx", prop.Elapsed, uni.Elapsed/prop.Elapsed)
	t.Notes = append(t.Notes,
		"uniform decomposition is held hostage by the slowest (mobile) nodes at every step;",
		"weighting by peak restores balance — the FAWN follow-up's heterogeneity question, quantified")
	return t
}

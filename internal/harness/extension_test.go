package harness

import (
	"strconv"
	"strings"
	"testing"

	"mobilehpc/internal/kernels"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/soc"
)

func TestProjectionClosesTheGap(t *testing.T) {
	// §7: "the cost of supercomputing may be about to fall" — the
	// projected ARMv8 part must beat every measured mobile platform
	// and approach i7 multicore throughput at far better energy.
	profs := kernels.Profiles()
	base := perf.Suite(soc.Tegra2(), 1.0, profs, 1)
	v8 := perf.Suite(soc.ARMv8Quad(), 2.0, profs, 4)
	ex := perf.Suite(soc.Exynos5250(), 1.7, profs, 2)
	i7 := perf.Suite(soc.CoreI7(), 2.4, profs, 4)

	sv8 := base.MeanTime / v8.MeanTime
	sex := base.MeanTime / ex.MeanTime
	si7 := base.MeanTime / i7.MeanTime
	if sv8 <= sex {
		t.Errorf("ARMv8 projection (%v) not faster than Exynos5 (%v)", sv8, sex)
	}
	if sv8 < si7*0.5 {
		t.Errorf("ARMv8 projection (%v) should reach at least half of i7 (%v)", sv8, si7)
	}
	if v8.MeanEnergy >= ex.MeanEnergy {
		t.Errorf("ARMv8 projection energy (%v J) should beat Exynos5 (%v J)",
			v8.MeanEnergy, ex.MeanEnergy)
	}
}

func TestReliabilityTableHits30Percent(t *testing.T) {
	tab := runReliability(Options{})
	// The 1500-node row, low-rate column, must read ~28-32%.
	var cell string
	for _, row := range tab.Rows {
		if row[0] == "1500" {
			cell = row[2]
		}
	}
	if cell == "" {
		t.Fatal("no 1500-node row")
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	if v < 25 || v > 35 {
		t.Errorf("1500-node daily error probability = %v%%, paper ~30%%", v)
	}
}

func TestEnergyCompareDirection(t *testing.T) {
	tab := runEnergyCompare(Options{Quick: true})
	var ratio []string
	for _, row := range tab.Rows {
		if strings.HasPrefix(row[0], "ratio") {
			ratio = row
		}
	}
	if ratio == nil {
		t.Fatal("no ratio row")
	}
	timeRatio, err1 := strconv.ParseFloat(ratio[2], 64)
	energyRatio, err2 := strconv.ParseFloat(ratio[4], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("ratio row unparsable: %v", ratio)
	}
	// Companion study [13]: ARM slower (ratio > 1) but lower energy
	// (ratio < 1) — the qualitative result this experiment must keep.
	if timeRatio <= 1 {
		t.Errorf("ARM time ratio = %v, must be > 1 (slower)", timeRatio)
	}
	if energyRatio >= 1 {
		t.Errorf("ARM energy ratio = %v, must be < 1 (less energy)", energyRatio)
	}
	if timeRatio > 6 || energyRatio < 0.15 {
		t.Errorf("ratios (%v, %v) outside the study's order of magnitude", timeRatio, energyRatio)
	}
}

func TestOpenMXAblationImprovesEfficiency(t *testing.T) {
	tab := runOpenMXAblation(Options{Quick: true})
	for _, row := range tab.Rows {
		gain, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[3], "+"), "%"), 64)
		if err != nil {
			t.Fatalf("gain cell %q: %v", row[3], err)
		}
		if gain <= 0 {
			t.Errorf("nodes=%s: Open-MX gain %v%% not positive", row[0], gain)
		}
	}
}

func TestIOBottleneckTableShape(t *testing.T) {
	tab := runIOBottleneck(Options{})
	sawTimeout := false
	for _, row := range tab.Rows {
		if row[2] == "true" && row[4] == "false" {
			sawTimeout = true
		}
		if row[4] == "true" {
			t.Errorf("serialized I/O timed out at %s nodes", row[0])
		}
	}
	if !sawTimeout {
		t.Error("no node count exhibits the parallel-times-out, serialized-works split")
	}
}

package harness

// Calibration tests: the paper-vs-measured assertions for every
// headline number of the evaluation. These are the contract that the
// reproduction preserves the paper's *shape* — who wins, by what
// factor, where crossovers fall. EXPERIMENTS.md tabulates the same
// values for human readers.

import (
	"math"
	"testing"

	"mobilehpc/internal/apps/hpl"
	"mobilehpc/internal/cluster"
	"mobilehpc/internal/kernels"
	"mobilehpc/internal/metrics"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/soc"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > want*relTol {
		t.Errorf("%s = %.3f, paper %.3f (tol %.0f%%)", name, got, want, relTol*100)
	}
}

// §3.1.1 single-core suite ratios at matched and maximum frequencies.
func TestCalibrationSingleCore(t *testing.T) {
	profs := kernels.Profiles()
	t2 := perf.Suite(soc.Tegra2(), 1.0, profs, 1)
	t3at1 := perf.Suite(soc.Tegra3(), 1.0, profs, 1)
	ex1 := perf.Suite(soc.Exynos5250(), 1.0, profs, 1)
	t3max := perf.Suite(soc.Tegra3(), 1.3, profs, 1)
	exMax := perf.Suite(soc.Exynos5250(), 1.7, profs, 1)
	i7max := perf.Suite(soc.CoreI7(), 2.4, profs, 1)

	within(t, "Tegra3@1GHz vs Tegra2 (paper 1.09)", t2.MeanTime/t3at1.MeanTime, 1.09, 0.05)
	within(t, "Exynos5@1GHz vs Tegra2 (paper 1.30)", t2.MeanTime/ex1.MeanTime, 1.30, 0.15)
	within(t, "Tegra3@max vs Tegra2 (paper 1.36)", t2.MeanTime/t3max.MeanTime, 1.36, 0.08)
	within(t, "Exynos5@max vs Tegra2 (paper 2.3)", t2.MeanTime/exMax.MeanTime, 2.3, 0.08)
	within(t, "i7@max vs Exynos5@max (paper 3x)", exMax.MeanTime/i7max.MeanTime, 3.0, 0.12)
	// "From the situation when Tegra 2 was 6.5 times slower..."
	gap := t2.MeanTime / i7max.MeanTime
	if gap < 6.0 || gap > 8.2 {
		t.Errorf("Tegra2 vs i7 gap = %.2f, paper quotes 6.5-8x", gap)
	}
}

// §3.1.1 per-iteration energies at 1 GHz (i7 at 2.4 GHz).
func TestCalibrationEnergyPerIteration(t *testing.T) {
	profs := kernels.Profiles()
	within(t, "Tegra2 energy (23.93 J)",
		perf.Suite(soc.Tegra2(), 1.0, profs, 1).MeanEnergy, 23.93, 0.05)
	within(t, "Tegra3 energy (19.62 J)",
		perf.Suite(soc.Tegra3(), 1.0, profs, 1).MeanEnergy, 19.62, 0.05)
	within(t, "Exynos5 energy (16.95 J)",
		perf.Suite(soc.Exynos5250(), 1.0, profs, 1).MeanEnergy, 16.95, 0.05)
	within(t, "i7 energy (28.57 J)",
		perf.Suite(soc.CoreI7(), 2.4, profs, 1).MeanEnergy, 28.57, 0.05)
}

// §3.1.2 multi-core energy gains: 1.7x (Tegras), 2.25x (Exynos), 2.5x (i7).
func TestCalibrationMulticoreEnergyGains(t *testing.T) {
	profs := kernels.Profiles()
	gain := func(p *soc.Platform, f float64) float64 {
		s := perf.Suite(p, f, profs, 1)
		m := perf.Suite(p, f, profs, p.Cores)
		return s.MeanEnergy / m.MeanEnergy
	}
	within(t, "Tegra2 multicore energy gain (1.7)", gain(soc.Tegra2(), 1.0), 1.7, 0.07)
	within(t, "Tegra3 multicore energy gain (1.7)", gain(soc.Tegra3(), 1.0), 1.7, 0.07)
	within(t, "Exynos5 multicore energy gain (2.25)", gain(soc.Exynos5250(), 1.0), 2.25, 0.08)
	within(t, "i7 multicore energy gain (2.5)", gain(soc.CoreI7(), 2.4), 2.5, 0.08)
	// Ordering: i7 > Exynos > Tegras (paper's qualitative ranking).
	if !(gain(soc.CoreI7(), 2.4) > gain(soc.Exynos5250(), 1.0) &&
		gain(soc.Exynos5250(), 1.0) > gain(soc.Tegra2(), 1.0)) {
		t.Error("multicore energy-gain ordering violated")
	}
}

// §3.1.2: "multithreaded execution has brought improvements, both in
// performance and in energy efficiency" — for every platform.
func TestCalibrationMulticoreAlwaysHelps(t *testing.T) {
	profs := kernels.Profiles()
	for _, p := range soc.All() {
		s := perf.Suite(p, p.MaxFreq(), profs, 1)
		m := perf.Suite(p, p.MaxFreq(), profs, p.Cores)
		if m.MeanTime >= s.MeanTime || m.MeanEnergy >= s.MeanEnergy {
			t.Errorf("%s: multicore did not improve both time and energy", p.Name)
		}
	}
}

// §4 headline: ~97 GFLOPS, ~51 % efficiency, ~120 MFLOPS/W at 96 nodes.
func TestCalibrationGreen500(t *testing.T) {
	if testing.Short() {
		t.Skip("96-node HPL")
	}
	cl := cluster.Tibidabo(96)
	n := int(8192 * math.Sqrt(96))
	r := hpl.Run(cl, 96, hpl.Config{N: n, RealN: 64})
	within(t, "Tibidabo HPL GFLOPS (97)", r.GFLOPS, 97, 0.08)
	within(t, "Tibidabo HPL efficiency (0.51)", r.Efficiency, 0.51, 0.08)
	mpw := metrics.MFLOPSPerWatt(r.GFLOPS, cl.PowerW(2))
	within(t, "Tibidabo MFLOPS/W (120)", mpw, 120, 0.10)
}

// Figure 3(a): "performance improves linearly as frequency is increased"
// — suite mean within 20 % of linear for every platform.
func TestCalibrationFrequencyLinearity(t *testing.T) {
	profs := kernels.Profiles()
	for _, p := range soc.All() {
		ref := perf.Suite(p, p.MaxFreq(), profs, 1).MeanTime
		for _, f := range p.FreqGHz {
			got := perf.Suite(p, f, profs, 1).MeanTime
			linear := ref * p.MaxFreq() / f
			if got > linear*1.25 || got < linear*0.75 {
				t.Errorf("%s@%v: mean %v vs linear %v", p.Name, f, got, linear)
			}
		}
	}
}

// §3.1.2: "When we increase the frequency of the CPU ... the overall
// energy efficiency improves" — per-iteration energy must decrease
// monotonically along each platform's DVFS ladder.
func TestCalibrationEnergyImprovesWithFrequency(t *testing.T) {
	profs := kernels.Profiles()
	for _, p := range soc.All() {
		prev := math.Inf(1)
		for _, f := range p.FreqGHz {
			e := perf.Suite(p, f, profs, 1).MeanEnergy
			if e >= prev {
				t.Errorf("%s@%v GHz: energy %v did not improve (prev %v)", p.Name, f, e, prev)
			}
			prev = e
		}
	}
}

// §3.1.2: "the SoC is not the main power sink in the system" — idle
// (non-CPU) power must exceed the all-core dynamic power on every
// mobile platform.
func TestCalibrationIdleDominates(t *testing.T) {
	for _, p := range soc.All() {
		if !p.Mobile {
			continue
		}
		dyn := p.Power.Watts(p.MaxFreq(), p.Cores) - p.Power.IdleW
		if dyn >= p.Power.IdleW {
			t.Errorf("%s: CPU dynamic power %v exceeds the rest of the platform %v",
				p.Name, dyn, p.Power.IdleW)
		}
	}
}

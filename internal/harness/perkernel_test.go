package harness

// Per-kernel calibration tests: §3.1.1's attribution claims, checked
// at kernel granularity rather than suite averages.

import (
	"testing"

	"mobilehpc/internal/kernels"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/soc"
)

// memBoundOn reports whether kernel pr is memory-bound on p at fGHz
// (single core): memory time exceeds compute time.
func memBoundOn(p *soc.Platform, fGHz float64, pr perf.Profile) bool {
	tc := pr.Flops / perf.ComputeRate(p, fGHz, pr)
	tm := 0.0
	if pr.Bytes > 0 {
		tm = pr.Bytes / perf.SingleCoreBW(p, fGHz, pr.Pattern)
	}
	return tm > tc
}

// §3.1.1: "Tegra 3 has an improved memory controller which brings a
// performance increase in memory-intensive micro-kernels" — at equal
// 1 GHz clocks, the Tegra3-over-Tegra2 gain must be concentrated in
// the memory-bound kernels.
func TestTegra3GainsConcentratedInMemoryKernels(t *testing.T) {
	t2, t3 := soc.Tegra2(), soc.Tegra3()
	var memGain, compGain float64
	var memN, compN int
	for _, k := range kernels.Suite() {
		pr := k.Profile()
		g := perf.IterTime(t2, 1.0, pr, 1) / perf.IterTime(t3, 1.0, pr, 1)
		if memBoundOn(t2, 1.0, pr) {
			memGain += g
			memN++
		} else {
			compGain += g
			compN++
		}
	}
	if memN == 0 || compN == 0 {
		t.Fatalf("degenerate split: %d mem-bound, %d compute-bound", memN, compN)
	}
	memGain /= float64(memN)
	compGain /= float64(compN)
	if memGain <= compGain {
		t.Errorf("memory-bound gain %.3f not above compute-bound gain %.3f", memGain, compGain)
	}
	// Same core: compute-bound kernels should barely move at 1 GHz
	// (their residual memory term still sees the better controller).
	if compGain > 1.05 {
		t.Errorf("compute-bound kernels gained %.3f on an identical core", compGain)
	}
}

// The suite must mix both regimes on the ARM parts — Table 2's design
// goal of stressing "different architectural features".
func TestSuiteMixesComputeAndMemoryBound(t *testing.T) {
	for _, p := range []*soc.Platform{soc.Tegra2(), soc.Exynos5250()} {
		mem, comp := 0, 0
		for _, k := range kernels.Suite() {
			if memBoundOn(p, p.MaxFreq(), k.Profile()) {
				mem++
			} else {
				comp++
			}
		}
		if mem < 3 || comp < 3 {
			t.Errorf("%s: unbalanced suite: %d memory-bound, %d compute-bound",
				p.Name, mem, comp)
		}
	}
}

// nbody and amcd are the compute kernels (Table 2: "peak compute
// performance"); they must be compute-bound on every platform.
func TestComputeKernelsComputeBoundEverywhere(t *testing.T) {
	for _, tag := range []string{"nbody", "amcd", "dmmm"} {
		k, err := kernels.ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range soc.All() {
			if memBoundOn(p, p.MaxFreq(), k.Profile()) {
				t.Errorf("%s memory-bound on %s", tag, p.Name)
			}
		}
	}
}

// vecop is pure streaming; it must be memory-bound everywhere.
func TestVecopMemoryBoundEverywhere(t *testing.T) {
	k, err := kernels.ByTag("vecop")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range soc.All() {
		if !memBoundOn(p, p.MaxFreq(), k.Profile()) {
			t.Errorf("vecop compute-bound on %s", p.Name)
		}
	}
}

// §3.1.2: quad-core Tegra3 at 1 GHz gains more from multithreading on
// compute-bound kernels than on bandwidth-saturated ones.
func TestMulticoreGainSplitOnTegra3(t *testing.T) {
	p := soc.Tegra3()
	amcd, _ := kernels.ByTag("amcd")
	vecop, _ := kernels.ByTag("vecop")
	gain := func(pr perf.Profile) float64 {
		return perf.IterTime(p, 1.0, pr, 1) / perf.IterTime(p, 1.0, pr, p.Cores)
	}
	if ga, gv := gain(amcd.Profile()), gain(vecop.Profile()); ga <= gv {
		t.Errorf("amcd multicore gain %.2f not above vecop %.2f", ga, gv)
	}
}

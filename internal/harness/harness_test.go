package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtefact(t *testing.T) {
	want := []string{"fig1", "fig2a", "fig2b", "table1", "table2", "table3",
		"fig3", "fig4", "fig5", "table4", "fig6", "fig7", "green500", "latpenalty",
		"projection", "reliability", "iobottleneck", "energycompare", "ablation-openmx",
		"bisection", "governor", "microserver", "accel", "green500-context", "stability",
		"balance", "fabric", "hpl-grid", "gromacs-inputs", "fig7sweep", "hetero", "placement", "metering", "ompss",
		"faultsweep"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(have), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig7")
	if err != nil || e.ID != "fig7" {
		t.Errorf("ByID(fig7) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestEveryExperimentProducesRows(t *testing.T) {
	for _, e := range Experiments() {
		if e.ID == "fig6" || e.ID == "green500" || e.ID == "ablation-openmx" ||
			e.ID == "energycompare" || e.ID == "green500-context" ||
			e.ID == "balance" || e.ID == "fabric" || e.ID == "hpl-grid" || e.ID == "gromacs-inputs" ||
			e.ID == "hetero" || e.ID == "placement" {
			continue // covered by TestClusterExperimentsQuick
		}
		tab := e.Run(Options{Quick: true})
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", e.ID)
		}
		if tab.ID != e.ID {
			t.Errorf("%s: table id %q", e.ID, tab.ID)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s row %d: %d cells for %d columns", e.ID, i, len(row), len(tab.Columns))
			}
		}
	}
}

func TestClusterExperimentsQuick(t *testing.T) {
	for _, id := range []string{"fig6", "green500", "ablation-openmx", "energycompare", "green500-context",
		"balance", "fabric", "hpl-grid", "gromacs-inputs", "fig7sweep", "hetero", "placement", "metering", "ompss",
		"faultsweep"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tab := e.Run(Options{Quick: true})
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo", Paper: "Figure 0",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRowf("%d|%s", 3, "four")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## x — demo", "Figure 0", "a  bb", "3  four", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a", "b"}}
	tab.AddRow("1", "va,l")
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"va,l\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestAddRowPanicsOnArity(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong cell count")
		}
	}()
	tab.AddRow("only one")
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), "## "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestFig6ShapesQuick(t *testing.T) {
	tab, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Run(Options{Quick: true})
	// At 16 vs 4 nodes, SPECFEM speedup must grow near-linearly and
	// all columns must be monotone non-decreasing.
	if len(out.Rows) < 2 {
		t.Fatalf("too few rows: %d", len(out.Rows))
	}
}

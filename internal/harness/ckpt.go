package harness

// Resumable task execution: the pool's skip-completed fan-out. When a
// checkpoint ledger is bound to the goroutine that enters a parmap
// (BindLedger — the same ambient-binding design as sim.BindAbort),
// every labelled task first consults the ledger: a committed entry is
// decoded and returned without executing the task (no span, no
// pool.tasks increment — the ckpt.hits counter records the skip), and
// a task that does execute commits its encoded result before the pool
// merges it (ckpt.commits). Because results merge in task-index order
// and every task's RNG is seeded from its label alone, a resumed run
// renders byte-identical output to an uninterrupted one — the
// committed-progress-is-never-recomputed invariant the resume smoke
// pins.
//
// Only task result types that round-trip losslessly through JSON are
// checkpointed: []string (the sub-run row shape) and *Table (the
// experiment shape). Anything else executes normally — checkpointing
// is an optimisation, never a correctness requirement, and a ledger
// that fails to commit is ignored for the same reason.

import (
	"encoding/json"
	"runtime"
	"sync"
)

// TaskLedger is the committed-progress store the pool consults. It is
// an interface (implemented by store.Ledger) so the harness does not
// depend on the persistence layer. Implementations must be safe for
// concurrent use.
type TaskLedger interface {
	// Lookup returns the committed payload for a task label, if any.
	Lookup(label string) ([]byte, bool)
	// Commit durably records a completed task's payload.
	Commit(label string, data []byte) error
}

// ledgerReg is the goroutine-id-keyed registry of ambient ledgers —
// the BindAbort pattern: pools read it once per parmap call, never
// per task, so a mutex-protected map is plenty.
var ledgerReg struct {
	mu sync.Mutex
	m  map[int64]TaskLedger
}

// BindLedger associates the calling goroutine with l: parmap calls
// entered on this goroutine (and on the workers they spawn, which
// inherit the binding like the abort flag) consult l before running
// labelled tasks and commit results into it. It returns an unbind
// function that must run on the same goroutine when the run finishes;
// bindings do not nest — binding again replaces the entry.
func BindLedger(l TaskLedger) (unbind func()) {
	id := poolGid()
	ledgerReg.mu.Lock()
	if ledgerReg.m == nil {
		ledgerReg.m = map[int64]TaskLedger{}
	}
	ledgerReg.m[id] = l
	ledgerReg.mu.Unlock()
	return func() {
		ledgerReg.mu.Lock()
		delete(ledgerReg.m, id)
		ledgerReg.mu.Unlock()
	}
}

// BoundLedger returns the ledger bound to the calling goroutine, or
// nil. Exported so run drivers (mhpcd's stub runners in tests, say)
// can reach the ambient ledger the server bound for them.
func BoundLedger() TaskLedger {
	ledgerReg.mu.Lock()
	l := ledgerReg.m[poolGid()]
	ledgerReg.mu.Unlock()
	return l
}

// poolGid returns the current goroutine's id, parsed from the header
// line of its stack trace — the same technique as sim's private gid.
// Costly (microseconds), called once per parmap entry and once per
// worker, never per task.
func poolGid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// ckptEncode serialises one checkpointable task result. Only the
// shapes that JSON round-trips losslessly are supported; everything
// else reports ok=false and is simply not checkpointed.
func ckptEncode(v any) ([]byte, bool) {
	switch v.(type) {
	case []string, *Table:
		data, err := json.Marshal(v)
		if err != nil {
			return nil, false
		}
		return data, true
	}
	return nil, false
}

// ckptDecode reverses ckptEncode for the pool's result type. A decode
// failure (schema drift, a damaged payload that still passed the
// ledger's checksums) reports ok=false and the task re-executes —
// last-wins commit semantics make the re-run overwrite the bad entry.
func ckptDecode[T any](data []byte) (v T, ok bool) {
	switch p := any(&v).(type) {
	case *[]string:
		if json.Unmarshal(data, p) != nil {
			return v, false
		}
		return v, true
	case **Table:
		var t Table
		if json.Unmarshal(data, &t) != nil {
			return v, false
		}
		*p = &t
		return v, true
	}
	return v, false
}

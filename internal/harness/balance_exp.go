package harness

import (
	"fmt"
	"math"

	"mobilehpc/internal/apps/hpl"
	"mobilehpc/internal/apps/md"
	"mobilehpc/internal/cluster"
	"mobilehpc/internal/interconnect"
	"mobilehpc/internal/mpi"
	"mobilehpc/internal/soc"
)

func init() {
	register(Experiment{
		ID:    "balance",
		Title: "Compute/network balance as SoC performance grows (§6.3)",
		Paper: "§6.3: 'the balance ... is still adequate, but will fall behind'",
		Run:   runBalance,
	})
	register(Experiment{
		ID:    "fabric",
		Title: "Ethernet tree vs BlueGene-style 3-D torus",
		Paper: "§2 (architecture-specific fabrics) ablation",
		Run:   runFabric,
	})
	register(Experiment{
		ID:    "hpl-grid",
		Title: "HPL process layout: 1-D rows vs 2-D block-cyclic grid",
		Paper: "HPL algorithm ablation",
		Run:   runHPLGrid,
	})
	register(Experiment{
		ID:    "gromacs-inputs",
		Title: "GROMACS scalability vs input size",
		Paper: "§4: 'its scalability improves as the input size is increased'",
		Run:   runGromacsInputs,
	})
}

// runBalance quantifies §6.3's warning: on Tegra 2, a 1 GbE NIC is
// adequately balanced (Table 4), but put the projected ARMv8 part
// behind the same NIC and communication swamps the faster cores; a
// 10 GbE NIC restores the balance.
func runBalance(o Options) *Table {
	t := &Table{
		ID: "balance", Title: "16-node HPL efficiency: platform x network",
		Paper:   "§6.3",
		Columns: []string{"platform", "network", "bytes/FLOPS", "HPL eff."},
	}
	n := 16
	if o.Quick {
		n = 8
	}
	N := int(8192 * math.Sqrt(float64(n)))
	rows := []struct {
		plat func() *soc.Platform
		gbps float64
		net  string
	}{
		{soc.Tegra2, 1.0, "1GbE"},
		{soc.ARMv8Quad, 1.0, "1GbE"},
		{soc.ARMv8Quad, 10.0, "10GbE"},
	}
	for _, row := range rows {
		p := row.plat()
		cl := cluster.New(cluster.Config{
			Nodes: n, Platform: row.plat, Proto: interconnect.TCPIP(),
			LinkGbps: row.gbps, SwitchLatUS: 2.0,
		})
		r := hpl.Run(cl, n, hpl.Config{N: N, RealN: 64, Threads: p.Cores})
		bpf := (row.gbps * 1e9 / 8) / (p.PeakGFLOPSMax() * 1e9)
		t.AddRowf("%s|%s|%.3f|%.1f%%", p.Name, row.net, bpf, r.Efficiency*100)
	}
	t.Notes = append(t.Notes,
		"§6.3: 'Given the lower per-node performance, the balance between I/O and GFLOPS is still",
		"adequate, but will fall behind as soon as compute performance increases' — the ARMv8 rows show it")
	return t
}

func runFabric(o Options) *Table {
	t := &Table{
		ID: "fabric", Title: "64-node alltoall: Tibidabo tree vs 4x4x4 torus",
		Paper:   "§2 fabrics",
		Columns: []string{"fabric", "elapsed (s)", "aggregate (MB/s)"},
	}
	const nodes = 64
	msg := 1 << 20
	if o.Quick {
		msg = 1 << 18
	}
	run := func(name string, build func(cl *cluster.Cluster)) {
		cl := cluster.Tibidabo(nodes)
		if build != nil {
			build(cl)
		}
		elapsed := mpi.Run(cl, nodes, func(r *mpi.Rank) {
			parts := make([]any, r.Size())
			r.Alltoall(parts, msg)
		})
		total := float64(nodes*(nodes-1)) * float64(msg)
		t.AddRowf("%s|%.2f|%.0f", name, elapsed, total/elapsed/1e6)
	}
	run("Ethernet tree (48-port, 4Gb trunks)", nil)
	run("3-D torus 4x4x4 (1Gb links)", func(cl *cluster.Cluster) {
		cl.Net = interconnect.Torus3D(cl.Eng, 4, 4, 4, 1.0, 1.0)
	})
	run("3-D torus 4x4x4 (4Gb links, BG-class)", func(cl *cluster.Cluster) {
		cl.Net = interconnect.Torus3D(cl.Eng, 4, 4, 4, 4.0, 1.0)
	})
	t.Notes = append(t.Notes,
		"with commodity 1Gb links the multi-hop torus loses to the tree's fat trunks;",
		"BlueGene-class link rates flip it — the §2 trade: a faster but low-volume, architecture-specific fabric")
	return t
}

func runHPLGrid(o Options) *Table {
	t := &Table{
		ID: "hpl-grid", Title: "HPL on Tibidabo: 1-D row layout vs 2-D grid",
		Paper:   "HPL ablation",
		Columns: []string{"nodes", "grid", "1-D eff.", "2-D eff.", "2-D speedup"},
	}
	counts := []int{16, 64, 96}
	if o.Quick {
		counts = []int{16}
	}
	for _, n := range counts {
		N := int(8192 * math.Sqrt(float64(n)))
		r1 := hpl.Run(cluster.Tibidabo(n), n, hpl.Config{N: N, RealN: 64})
		p, q := hpl.BestGrid(n)
		r2 := hpl.RunGrid(cluster.Tibidabo(n), hpl.GridConfig{
			Config: hpl.Config{N: N, RealN: 64}, P: p, Q: q,
		})
		t.AddRowf("%d|%dx%d|%.1f%%|%.1f%%|%.2fx",
			n, p, q, r1.Efficiency*100, r2.Efficiency*100, r1.Elapsed/r2.Elapsed)
	}
	t.Notes = append(t.Notes,
		"2-D block-cyclic layout cuts per-rank broadcast volume from O(N) to O(N/P + N/Q)")
	return t
}

func runGromacsInputs(o Options) *Table {
	t := &Table{
		ID: "gromacs-inputs", Title: "GROMACS-like MD: 32-node speedup vs input size",
		Paper:   "§4",
		Columns: []string{"particles", "1-node time (s)", "32-node time (s)", "speedup", "efficiency"},
	}
	steps := 10
	if o.Quick {
		steps = 4
	}
	for _, parts := range []int{100000, 500000, 2000000} {
		cfg := md.Config{Particles: parts, Steps: steps, RealParticles: 64}
		base := md.Run(cluster.Tibidabo(1), 1, cfg).Elapsed
		big := md.Run(cluster.Tibidabo(32), 32, cfg).Elapsed
		s := base / big
		t.AddRowf("%d|%.2f|%.3f|%.1f|%.0f%%", parts, base, big, s, s/32*100)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("§4: GROMACS input fit two nodes' memory; 'its scalability improves as the input size is increased'"))
	return t
}

package harness

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mobilehpc/internal/sim"
)

// cancelAfterDispatches is a sim.Observer that cancels a context once
// the engines of a run have dispatched a threshold number of events —
// a deterministic way to land a cancellation in the middle of a
// simulation, instead of racing a wall-clock timer against it.
type cancelAfterDispatches struct {
	n      atomic.Int64
	after  int64
	cancel context.CancelFunc
}

// EventScheduled implements sim.Observer.
func (c *cancelAfterDispatches) EventScheduled(int) {}

// EventCanceled implements sim.Observer.
func (c *cancelAfterDispatches) EventCanceled() {}

// EventDispatched cancels the context at the threshold.
func (c *cancelAfterDispatches) EventDispatched() {
	if c.n.Add(1) == c.after {
		c.cancel()
	}
}

// Cancelling fig6 mid-simulation must return context.Canceled
// promptly, render nothing, and leak no goroutines — at serial and
// parallel jobs values.
func TestCancelMidRunLeavesNoGoroutines(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAfterDispatches{after: 500, cancel: cancel}
		sim.SetDefaultObserver(obs)
		tabs, err := TablesContext(ctx, []string{"fig6"}, Options{Quick: true, Jobs: jobs})
		sim.SetDefaultObserver(nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if tabs != nil {
			t.Fatalf("jobs=%d: cancelled run returned tables", jobs)
		}
		if obs.n.Load() < 500 {
			t.Fatalf("jobs=%d: run finished after only %d events — cancel landed too late to test anything",
				jobs, obs.n.Load())
		}
		waitGoroutines(t, base)
	}
}

// The event-driven MPI runtime parks each rank in Suspend for its
// whole protocol chain (injection cost -> rendezvous -> per-link wire
// events -> wake), so a mid-run abort now lands, with high likelihood,
// while ranks sit suspended inside Send/Recv state machines — and
// while delivery continuations are still queued — rather than in a
// simple Proc.Wait. Sweeping the cancel threshold walks the abort
// point across those chains on the MPI-heavy experiments at Jobs=4;
// every abort must return context.Canceled, render nothing, and tear
// down all rank goroutines. This is the PR-5 cancel wall extended to
// the Suspend/Wake runtime; it runs under -race in make check.
func TestCancelSuspendedMPIRanksLeavesNoGoroutines(t *testing.T) {
	// The quick green500+fig6 pair dispatches ~79k events; these
	// thresholds scatter aborts from the first HPL panels to deep into
	// the run without ever outrunning it.
	for _, after := range []int64{200, 2500, 15000, 60000} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAfterDispatches{after: after, cancel: cancel}
		sim.SetDefaultObserver(obs)
		tabs, err := TablesContext(ctx, []string{"green500", "fig6"}, Options{Quick: true, Jobs: 4})
		sim.SetDefaultObserver(nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
		if tabs != nil {
			t.Fatalf("after=%d: cancelled run returned tables", after)
		}
		if got := obs.n.Load(); got < after {
			t.Fatalf("after=%d: run finished at %d events — cancel landed too late", after, got)
		}
		waitGoroutines(t, base)
	}
}

// Abort wall for the partitioned (conservative-PDES) engine: a cancel
// that lands while a Group is mid-window must unwind every partition
// engine — the coordinator, the parked worker goroutines, and any rank
// procs suspended inside MPI state machines across partitions — return
// context.Canceled, render nothing, and leak no goroutines. The
// threshold sweep walks the abort point from the first windows deep
// into the run; the deadline check bounds teardown latency: from the
// moment the observer fires the cancel to TablesContext returning must
// stay within the run's 100 ms abort budget (relaxed under -race,
// whose scheduling overhead makes tight wall-clock bounds flaky).
func TestCancelUnderPDESLeavesNoGoroutines(t *testing.T) {
	budget := 100 * time.Millisecond
	if testing.Short() {
		budget = time.Second // -race wall: prove promptness, not latency
	}
	for _, intra := range []int{2, 4} {
		for _, after := range []int64{200, 2500, 15000} {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			var cancelledAt atomic.Pointer[time.Time]
			obs := &cancelAfterDispatches{after: after, cancel: func() {
				now := time.Now()
				cancelledAt.Store(&now)
				cancel()
			}}
			sim.SetDefaultObserver(obs)
			tabs, err := TablesContext(ctx, []string{"fig6"}, Options{Quick: true, Jobs: 2, Intra: intra})
			returned := time.Now()
			sim.SetDefaultObserver(nil)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("intra=%d after=%d: err = %v, want context.Canceled", intra, after, err)
			}
			if tabs != nil {
				t.Fatalf("intra=%d after=%d: cancelled run returned tables", intra, after)
			}
			if got := obs.n.Load(); got < after {
				t.Fatalf("intra=%d after=%d: run finished at %d events — cancel landed too late", intra, after, got)
			}
			if at := cancelledAt.Load(); at != nil {
				if d := returned.Sub(*at); d > budget {
					t.Errorf("intra=%d after=%d: run returned %v after cancel, want <= %v", intra, after, d, budget)
				}
			}
			waitGoroutines(t, base)
		}
	}
}

// Cancellation through the reliability Monte-Carlo chunk loop: the
// stability experiment spends its time in reduceChunks, not in an
// engine, and must still unwind with context.Canceled.
func TestCancelMonteCarloExperiment(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-cancelled: the run must abort before real work
	start := time.Now()
	_, err := TablesContext(ctx, []string{"stability"}, Options{Quick: true, Jobs: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled run still took %v", d)
	}
	waitGoroutines(t, base)
}

// A run that completes before the cancel must be untouched: its bytes
// equal an uncancelled run's at every jobs value.
func TestCompletedThenCancelledIsByteIdentical(t *testing.T) {
	want, err := Tables([]string{"fig6"}, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		ctx, cancel := context.WithCancel(context.Background())
		got, err := TablesContext(ctx, []string{"fig6"}, Options{Quick: true, Jobs: jobs})
		cancel() // after completion: must change nothing
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var w, g bytes.Buffer
		if err := want[0].Render(&w); err != nil {
			t.Fatal(err)
		}
		if err := got[0].Render(&g); err != nil {
			t.Fatal(err)
		}
		if w.String() != g.String() {
			t.Fatalf("jobs=%d: completed-then-cancelled output differs from uncancelled", jobs)
		}
	}
}

// Cancel latency: once the context is cancelled, the run must return
// within the 100 ms abort budget (engines poll per event, the MC loop
// per chunk).
func TestCancelLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency bound is noisy under -race")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := TablesContext(ctx, []string{"fig6", "stability", "green500"},
			Options{Quick: true, Jobs: 2})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the run get going
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Errorf("run returned %v after cancel, want <= 100ms", elapsed)
		}
		// The run may legitimately have finished before the cancel hit.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return within 5s")
	}
}

// A panicking task must surface from the pool as a *TaskPanicError
// tagged with its label, seed, and stack — identically at every jobs
// value — and must cancel the remaining tasks instead of crashing the
// process.
func TestPoolPanicPropagation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		base := runtime.NumGoroutine()
		flag := sim.NewAbortFlag()
		unbind := sim.BindAbort(flag)
		ran := make([]atomic.Bool, 16)
		_, err := parmapErr("experiment", func(i int) string { return "task" },
			jobs, len(ran), func(i int) int {
				ran[i].Store(true)
				if i == 3 {
					panic("kaboom")
				}
				return i
			})
		unbind()
		var tpe *TaskPanicError
		if !errors.As(err, &tpe) {
			t.Fatalf("jobs=%d: err = %v (%T), want *TaskPanicError", jobs, err, err)
		}
		if tpe.Index != 3 || tpe.Label != "task" || tpe.Seed != TaskSeed("task") {
			t.Fatalf("jobs=%d: bad tags: index=%d label=%q seed=%d", jobs, tpe.Index, tpe.Label, tpe.Seed)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("jobs=%d: error %q does not carry the panic value", jobs, err)
		}
		if !strings.Contains(string(tpe.Stack), "parmapErr") && !strings.Contains(string(tpe.Stack), "cancel_test") {
			t.Fatalf("jobs=%d: stack missing panic site:\n%s", jobs, tpe.Stack)
		}
		if jobs == 1 {
			// Serial: the panic at index 3 must stop the loop.
			for i := 4; i < len(ran); i++ {
				if ran[i].Load() {
					t.Fatalf("serial task %d still ran after the panic at 3", i)
				}
			}
		}
		if !flag.Aborted() {
			t.Fatalf("jobs=%d: task panic did not raise the run's abort flag", jobs)
		}
		waitGoroutines(t, base)
	}
}

// The legacy parmap surface still re-raises the first panic on the
// caller (now as a tagged error) — no silent swallowing when no abort
// flag is bound.
func TestParmapUnboundPanicStillPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		tpe, ok := r.(*TaskPanicError)
		if !ok || !strings.Contains(tpe.Error(), "splat") {
			t.Fatalf("panic %v (%T) lost the task value", r, r)
		}
	}()
	parmap(4, 8, func(i int) int {
		if i == 2 {
			panic("splat")
		}
		return i
	})
}

// waitGoroutines polls until the goroutine count settles back to (or
// below) base — the goleak-style check for the cancellation wall.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > base %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

package harness

import (
	"fmt"

	"mobilehpc/internal/cluster"
	"mobilehpc/internal/mpi"
	"mobilehpc/internal/power"
	"mobilehpc/internal/soc"
)

func init() {
	register(Experiment{
		ID:    "bisection",
		Title: "All-to-all throughput vs the 8 Gb/s Tibidabo bisection",
		Paper: "§4 (network description) ablation",
		Run:   runBisection,
	})
	register(Experiment{
		ID:    "governor",
		Title: "DVFS governor: performance vs ondemand on HPC bursts",
		Paper: "§5 (kernel tuning) ablation",
		Run:   runGovernor,
	})
}

// runBisection drives a full pairwise exchange on growing Tibidabo
// slices and reports the aggregate achieved bandwidth: once traffic
// crosses leaf switches, the 4 Gb/s trunks (8 Gb/s bisection at 192
// nodes) dominate, which is why Figure 6's communication-heavy codes
// flatten.
func runBisection(o Options) *Table {
	t := &Table{
		ID: "bisection", Title: "Alltoall on Tibidabo: aggregate bandwidth vs node count",
		Paper:   "§4 network",
		Columns: []string{"nodes", "crosses trunks", "elapsed (s)", "aggregate (MB/s)", "per-node (MB/s)"},
	}
	counts := []int{8, 32, 64, 96}
	if o.Quick {
		counts = []int{8, 32}
	}
	const msg = 1 << 20 // 1 MiB to every peer
	for _, n := range counts {
		cl := cluster.Tibidabo(n)
		elapsed := mpi.Run(cl, n, func(r *mpi.Rank) {
			parts := make([]any, r.Size())
			r.Alltoall(parts, msg)
		})
		totalBytes := float64(n*(n-1)) * msg
		agg := totalBytes / elapsed / 1e6
		cross := n > 48 // beyond one 48-port leaf switch
		t.AddRowf("%d|%v|%.2f|%.0f|%.1f", n, cross, elapsed, agg, agg/float64(n))
	}
	t.Notes = append(t.Notes,
		"within one leaf the per-node rate is NIC-limited; across leaves the 4 Gb/s trunks cap it",
		fmt.Sprintf("Tibidabo bisection: %.0f Gb/s at 192 nodes (paper: 8 Gb/s)", 8.0))
	return t
}

func runGovernor(Options) *Table {
	t := &Table{
		ID: "governor", Title: "50 bursts of 0.5 s compute: performance vs ondemand",
		Paper:   "§5 ablation",
		Columns: []string{"platform", "performance (s)", "ondemand (s)", "ramp loss", "extra energy"},
	}
	for _, p := range soc.All() {
		pf := power.DefaultPerformance().Campaign(p, p.Cores, 50, 0.5)
		od := power.DefaultOndemand().Campaign(p, p.Cores, 50, 0.5)
		t.AddRowf("%s|%.2f|%.2f|+%.1f%%|%+.1f%%",
			p.Name, pf.Time, od.Time,
			(od.Time/pf.Time-1)*100, (od.Energy/pf.Energy-1)*100)
	}
	t.Notes = append(t.Notes,
		"§5: kernels were tuned 'setting the default DVFS policy to performance' — this is why")
	return t
}

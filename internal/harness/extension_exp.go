package harness

// Extension experiments: the paper's forward-looking and
// lessons-learned material, implemented rather than just discussed —
// the ARMv8 projection (§3.1.2, §7), the §6.3 ECC/reliability
// arithmetic, the §6.2 NFS bottleneck, the energy-to-solution
// comparison the paper cites from its companion study [13], and the
// §4.1 "what if Tibidabo ran Open-MX" ablation.

import (
	"math"

	"mobilehpc/internal/apps/hpl"
	"mobilehpc/internal/apps/specfem"
	"mobilehpc/internal/cluster"
	"mobilehpc/internal/interconnect"
	"mobilehpc/internal/kernels"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/reliability"
	"mobilehpc/internal/soc"
)

func init() {
	register(Experiment{
		ID:    "projection",
		Title: "Projected ARMv8 quad-core @ 2 GHz vs measured platforms",
		Paper: "§3.1.2, §7, Figure 2b final point",
		Run:   runProjection,
	})
	register(Experiment{
		ID:    "reliability",
		Title: "Memory reliability without ECC",
		Paper: "§6.3 (after Schroeder et al. [37])",
		Run:   runReliability,
	})
	register(Experiment{
		ID:    "iobottleneck",
		Title: "NFS over 100 Mbit Ethernet: parallel vs serialized I/O",
		Paper: "§6.2",
		Run:   runIOBottleneck,
	})
	register(Experiment{
		ID:    "energycompare",
		Title: "Energy-to-solution: ARM cluster vs x86 server cluster",
		Paper: "§4 (companion study [13])",
		Run:   runEnergyCompare,
	})
	register(Experiment{
		ID:    "ablation-openmx",
		Title: "What if Tibidabo ran Open-MX instead of TCP/IP?",
		Paper: "§4.1 ablation",
		Run:   runOpenMXAblation,
	})
}

func runProjection(Options) *Table {
	t := &Table{
		ID: "projection", Title: "ARMv8 projection vs measured platforms",
		Paper:   "§3.1.2 / Figure 2b",
		Columns: []string{"platform", "FP64 peak (GF)", "suite speedup", "J/iteration", "MFLOPS/W (suite)"},
	}
	profs := kernels.Profiles()
	base := perf.Suite(soc.Tegra2(), 1.0, profs, 1)
	plats := append(soc.All(), soc.ARMv8Quad())
	for _, p := range plats {
		s := perf.Suite(p, p.MaxFreq(), profs, p.Cores)
		// Suite-level MFLOPS/W: modelled useful flops per joule.
		flops := 0.0
		for _, pr := range profs {
			flops += pr.Flops
		}
		flops /= float64(len(profs))
		t.AddRowf("%s|%.1f|%.2f|%.2f|%.0f",
			p.Name, p.PeakGFLOPSMax(), base.MeanTime/s.MeanTime, s.MeanEnergy,
			flops/s.MeanEnergy/1e6)
	}
	t.Notes = append(t.Notes,
		"ARMv8 row is the projection: FP64 in NEON doubles per-clock peak vs Cortex-A15 (§3.1.2)",
		"the projected part reaches i7-class multicore throughput within a mobile power envelope")
	return t
}

func runReliability(Options) *Table {
	t := &Table{
		ID: "reliability", Title: "Daily memory-error probability without ECC",
		Paper:   "§6.3",
		Columns: []string{"nodes", "DIMMs", "P(error/day) low", "P(error/day) high", "MTBE (h, low)", "24h job survival (no ECC / ECC)"},
	}
	for _, n := range []int{96, 192, 1500} {
		lo := reliability.ClusterDailyErrorProb(n, 2, reliability.DIMMAnnualErrorLow)
		hi := reliability.ClusterDailyErrorProb(n, 2, reliability.DIMMAnnualErrorHigh)
		mtbe := reliability.MTBEHours(n, 2, reliability.DIMMAnnualErrorLow)
		sNo := reliability.JobSurvivalProb(n, 2, reliability.DIMMAnnualErrorLow, 24, false)
		sEcc := reliability.JobSurvivalProb(n, 2, reliability.DIMMAnnualErrorLow, 24, true)
		t.AddRowf("%d|%d|%.1f%%|%.1f%%|%.0f|%.0f%% / %.0f%%",
			n, 2*n, lo*100, hi*100, mtbe, sNo*100, sEcc*100)
	}
	t.Notes = append(t.Notes,
		"paper: a 1,500-node system with 2 DIMMs/node has ~30% error probability on any given day",
		"mobile SoC memory controllers have no ECC — a §6.3 blocker for production HPC")
	return t
}

func runIOBottleneck(Options) *Table {
	t := &Table{
		ID: "iobottleneck", Title: "NFS I/O phase over 100 Mbit Ethernet (64 MB per node)",
		Paper:   "§6.2",
		Columns: []string{"nodes", "parallel (s)", "parallel times out", "serialized (s)", "serialized times out"},
	}
	nfs := cluster.TibidaboNFS()
	const perNode = 64 << 20
	for _, n := range []int{8, 16, 32, 64, 96, 192} {
		pt, pto := nfs.IOPhaseParallel(n, perNode)
		st, sto := nfs.IOPhaseSerialized(n, perNode)
		t.AddRowf("%d|%.0f|%v|%.0f|%v", n, pt, pto, st, sto)
	}
	t.AddRowf("max nodes before parallel NFS times out: %d|-|-|-|-",
		nfs.MaxNodesParallelIO(perNode))
	t.Notes = append(t.Notes,
		"paper: NFS timeouts in I/O phases forced serializing parallel I/O and limited usable node counts")
	return t
}

func runEnergyCompare(o Options) *Table {
	t := &Table{
		ID: "energycompare", Title: "SPECFEM time and energy: Tibidabo vs x86 server cluster",
		Paper:   "§4 / [13]",
		Columns: []string{"machine", "nodes", "time (s)", "power (W)", "energy (kJ)"},
	}
	steps := 60
	if o.Quick {
		steps = 10
	}
	cfg := specfem.Config{Elements: 400000, Steps: steps, RealElements: 16}

	arm := cluster.Tibidabo(16)
	ra := specfem.Run(arm, 16, cfg)
	wa := arm.PowerW(2)

	// A 4-node Sandy Bridge server cluster: the i7 silicon in a server
	// chassis (PSU, fans, board ~250 W/node overhead, as in the
	// Nehalem-class cluster of the companion study).
	x86 := cluster.New(cluster.Config{
		Nodes: 4, Platform: soc.CoreI7, FGHz: 2.4,
		Proto: interconnect.TCPIP(), LinkGbps: 1.0, SwitchLatUS: 2.0,
		NodeOverW: 250, SwitchW: 25,
	})
	rx := specfem.Run(x86, 4, specfem.Config{
		Elements: cfg.Elements, Steps: cfg.Steps, RealElements: cfg.RealElements, Threads: 4})
	wx := x86.PowerW(4)

	ea := wa * ra.Elapsed
	ex := wx * rx.Elapsed
	t.AddRowf("Tibidabo (ARM)|16|%.2f|%.0f|%.2f", ra.Elapsed, wa, ea/1e3)
	t.AddRowf("x86 server cluster|4|%.2f|%.0f|%.2f", rx.Elapsed, wx, ex/1e3)
	t.AddRowf("ratio (ARM/x86)|-|%.2f|%.2f|%.2f", ra.Elapsed/rx.Elapsed, wa/wx, ea/ex)
	t.Notes = append(t.Notes,
		"companion study [13]: Tibidabo up to 4x slower but up to 3x lower energy-to-solution",
		"the ARM machine trades time for energy — the paper's central value proposition")
	return t
}

func runOpenMXAblation(o Options) *Table {
	t := &Table{
		ID: "ablation-openmx", Title: "Tibidabo HPL efficiency: TCP/IP vs Open-MX",
		Paper:   "§4.1 ablation",
		Columns: []string{"nodes", "TCP/IP eff.", "Open-MX eff.", "GFLOPS gain"},
	}
	nodes := []int{16, 48, 96}
	if o.Quick {
		nodes = []int{4, 16}
	}
	for _, n := range nodes {
		N := int(8192 * math.Sqrt(float64(n)))
		run := func(proto interconnect.Protocol) hpl.Result {
			cl := cluster.New(cluster.Config{
				Nodes: n, Platform: soc.Tegra2, FGHz: 1.0, Proto: proto,
				LinkGbps: 1.0, UplinkGbps: 4.0, SwitchRadix: 48, SwitchLatUS: 2.0,
				NodeOverW: 3.5, SwitchW: 25,
			})
			return hpl.Run(cl, n, hpl.Config{N: N, RealN: 64})
		}
		rt := run(interconnect.TCPIP())
		ro := run(interconnect.OpenMX())
		t.AddRowf("%d|%.1f%%|%.1f%%|%+.1f%%",
			n, rt.Efficiency*100, ro.Efficiency*100, (ro.GFLOPS/rt.GFLOPS-1)*100)
	}
	t.Notes = append(t.Notes,
		"quantifies §4.1's motivation: the lighter stack recovers part of the HPL efficiency lost to communication")
	return t
}

package harness

import (
	"fmt"

	"mobilehpc/internal/cluster"
	"mobilehpc/internal/faults"
	"mobilehpc/internal/reliability"
)

// This file closes the reliability loop opened by runStability: the
// stability experiment *predicts* checkpointed efficiency from §6.1's
// hang rate and §6.3's memory-event arithmetic; faultsweep *measures*
// it by injecting those failure modes into discrete-event replays on
// the simulated Tibidabo and comparing the mean useful-work fraction
// against reliability.CheckpointEfficiency at each grid point.

func init() {
	register(Experiment{
		ID:    "faultsweep",
		Title: "Injected faults vs the analytic checkpoint model",
		Paper: "§6.1 / §6.3 (validation)",
		Run:   runFaultSweep,
	})
}

// faultSweepNodes is the simulated partition each replay trial runs
// on: big enough that all per-node fault streams interleave, small
// enough that thousands of trials stay fast.
const faultSweepNodes = 8

func runFaultSweep(o Options) *Table {
	t := &Table{
		ID: "faultsweep", Title: "Checkpointed efficiency under injected faults (simulated Tibidabo)",
		Paper: "§6.1 / §6.3 validation",
		Columns: []string{"MTBF (h)", "interval (h)", "link faults", "analytic eff.",
			"simulated eff.", "abs err", "fail/run", "deg/run"},
	}
	trials := 800
	if o.Quick {
		trials = 32
	}
	const ckptCost, restart = 0.1, 0.05
	type cell struct {
		mtbf, scale float64
		degrades    bool
	}
	var cells []cell
	for _, mtbf := range []float64{50, 150, 400} {
		for _, scale := range []float64{0.5, 1, 2} {
			cells = append(cells, cell{mtbf, scale, false})
		}
	}
	// One off-model row: NIC degradations on top, which the analytic
	// formula does not know about — simulated efficiency must drop
	// below the prediction.
	cells = append(cells, cell{150, 1, true})

	for _, row := range parmapObs("subrun",
		func(i int) string {
			return fmt.Sprintf("faultsweep/mtbf=%g/x%g/deg=%v", cells[i].mtbf, cells[i].scale, cells[i].degrades)
		},
		o.Jobs, len(cells), func(i int) []string {
			c := cells[i]
			interval := reliability.OptimalCheckpointHours(ckptCost, c.mtbf) * c.scale
			analytic := reliability.CheckpointEfficiency(interval, ckptCost, restart, c.mtbf)
			cfg := faults.RunConfig{
				WorkHours: 40 * interval, IntervalHours: interval,
				CheckpointHours: ckptCost, RestartHours: restart, CommFraction: 0.3,
			}
			seed := TaskSeed("faultsweep",
				fmt.Sprintf("mtbf=%g", c.mtbf), fmt.Sprintf("x%g", c.scale), fmt.Sprintf("deg=%v", c.degrades))
			sumEff, sumFail, sumDeg := 0.0, 0, 0
			for trial := 0; trial < trials; trial++ {
				p := faults.Params{
					Nodes:        faultSweepNodes,
					HorizonHours: 3 * cfg.WorkHours,
					// Split the target MTBF evenly between §6.3 memory
					// events and §6.1 hangs so both streams fire.
					MemMTBFHours: 2 * c.mtbf,
					Stability: reliability.NodeStability{
						HangsPerNodeDay: 24 / (2 * c.mtbf * faultSweepNodes),
					},
					Seed: faults.Mix(seed, trial),
				}
				if c.degrades {
					p.LinkMTBFHours = c.mtbf / 2
				}
				r := faults.Replay(cluster.Tibidabo(faultSweepNodes), faults.Generate(p), cfg)
				sumEff += r.UsefulFraction
				sumFail += r.Failures
				sumDeg += r.Degrades
			}
			mean := sumEff / float64(trials)
			link := "off"
			if c.degrades {
				link = "on"
			}
			diff := mean - analytic
			if diff < 0 {
				diff = -diff
			}
			return []string{
				fmt.Sprintf("%.0f", c.mtbf), fmt.Sprintf("%.2f", interval), link,
				fmt.Sprintf("%.1f%%", analytic*100), fmt.Sprintf("%.1f%%", mean*100),
				fmt.Sprintf("%.3f", diff),
				fmt.Sprintf("%.2f", float64(sumFail)/float64(trials)),
				fmt.Sprintf("%.2f", float64(sumDeg)/float64(trials)),
			}
		}) {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"each row: seeded fault schedules (memory events + PCIe hangs, split 50/50) replayed through the checkpoint/restart state machine on the simulated cluster",
		"abs err: |simulated - analytic| against reliability.CheckpointEfficiency — the §6 formulas validated by the discrete-event engine",
		"link faults 'on': NIC degradations the analytic model ignores; the simulated column must fall below the prediction")
	return t
}

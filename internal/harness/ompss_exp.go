package harness

import (
	"fmt"

	"mobilehpc/internal/interconnect"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/soc"
	"mobilehpc/internal/taskflow"
)

func init() {
	register(Experiment{
		ID:    "ompss",
		Title: "Task-dataflow latency hiding (OmpSs/Nanos++) vs BSP",
		Paper: "§5 stack / §6.3 ([10])",
		Run:   runOmpSs,
	})
}

// runOmpSs builds one HYDRO-like time step as an OmpSs task graph on a
// Tegra 2 node of Tibidabo — interior compute blocks, boundary blocks,
// and the halo receives they depend on — and schedules it twice: as
// written (dataflow: interior overlaps the halo transfer) and with a
// BSP phase barrier between communication and computation. The gap is
// §6.3's "latency-hiding programming techniques and runtimes [10]",
// quantified per interconnect stack.
func runOmpSs(Options) *Table {
	t := &Table{
		ID: "ompss", Title: "One HYDRO step on a Tibidabo node: BSP vs dataflow",
		Paper:   "§6.3 / [10]",
		Columns: []string{"protocol", "BSP step (ms)", "dataflow step (ms)", "hidden"},
	}
	p := soc.Tegra2()
	const grid = 2048
	const blocks = 8
	cellsPerBlock := float64(grid) * float64(grid) / 96 / blocks
	blockProfile := perf.Profile{
		Kernel: "hydro-block", Flops: cellsPerBlock * 110, Bytes: cellsPerBlock * 80,
		SIMDFraction: 0.8, Irregularity: 0.1, ParallelFraction: 0.98,
		Pattern: perf.Strided,
	}
	blockDur := perf.IterTime(p, 1.0, blockProfile, 1)
	haloBytes := grid * 8 * 4

	for _, proto := range []interconnect.Protocol{interconnect.TCPIP(), interconnect.OpenMX()} {
		e := interconnect.Endpoint{Platform: p, FGHz: 1.0, Proto: proto}
		haloDur := interconnect.OneWayLatency(e, haloBytes, 1.0)

		build := func(bsp bool) float64 {
			g := taskflow.NewGraph()
			if bsp {
				// Communication phase completes before any compute.
				g.Add("halo-up", haloDur, nil, []string{"phase"}, true)
				g.Add("halo-down", haloDur, []string{"phase"}, []string{"phase"}, true)
				for b := 0; b < blocks; b++ {
					g.Add("block", blockDur, []string{"phase"}, nil, false)
				}
			} else {
				// Dataflow: only the two boundary blocks need the halos.
				g.Add("halo-up", haloDur, nil, []string{"haloU"}, true)
				g.Add("halo-down", haloDur, nil, []string{"haloD"}, true)
				for b := 0; b < blocks; b++ {
					switch b {
					case 0:
						g.Add("boundary", blockDur, []string{"haloU"}, nil, false)
					case blocks - 1:
						g.Add("boundary", blockDur, []string{"haloD"}, nil, false)
					default:
						g.Add("interior", blockDur, nil, nil, false)
					}
				}
			}
			return g.Schedule(p.Cores).Makespan
		}
		bsp := build(true)
		df := build(false)
		t.AddRowf("%s|%.2f|%.2f|%.0f%%", proto.Name, bsp*1e3, df*1e3, (1-df/bsp)*100)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-step: %d compute blocks of %.2f ms on %d Cortex-A9 cores, two halo transfers",
			blocks, blockDur*1e3, p.Cores),
		"§6.3: network overheads 'can be alleviated to some extent using latency-hiding",
		"programming techniques and runtimes' — the dataflow schedule is that claim, executed")
	return t
}

package harness

// Parallel experiment scheduling. The registry sweep in RunAll, the
// per-node-count sub-runs inside the cluster experiments, and the
// Monte-Carlo reduction in internal/reliability all funnel through the
// same bounded worker pool, and all obey one contract:
//
//   * every task owns its state — its own cluster (and therefore its
//     own sim.Engine) and, when it samples, its own RNG seeded by
//     TaskSeed — so tasks never share mutable data;
//   * results are merged in task-index order, never completion order,
//     so the rendered tables and CSV output of a parallel run are
//     byte-identical to the serial run.
//
// Jobs <= 1 takes the exact legacy path: a plain loop on the calling
// goroutine with no channels, no goroutines, no pool.
//
// Cancellation and panics share one containment design. The run's
// abort flag (bound to the submitting goroutine by RunAllContext /
// TablesContext, see internal/sim.BindAbort) is re-bound onto every
// worker goroutine, so engines built anywhere inside a task poll it.
// A worker never lets a panic escape its goroutine: a cancelled
// engine's *sim.AbortError is converted back into the abort cause,
// and any other panic becomes a *TaskPanicError (tagged with the task
// label, its TaskSeed, and the stack) that also raises the abort flag
// so sibling tasks stop. The first failure by task index — not by
// completion time — is what surfaces, so the reported error is the
// same at every -j.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"mobilehpc/internal/obs"
	"mobilehpc/internal/sim"
)

// TaskPanicError is a recovered panic from one pool task, tagged with
// enough context to reproduce it: the task's index and label, the
// deterministic TaskSeed derived from that label, the panic value,
// and the stack at the panic site. The pool converts worker panics
// into this error instead of crashing the process from a worker
// goroutine (or deadlocking a caller that recovers).
type TaskPanicError struct {
	Index int    // task index within its parmap call
	Label string // task label (experiment id, sub-run name); "" untagged
	Seed  uint64 // TaskSeed(Label) when labelled, 0 otherwise
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery, trimmed to the task goroutine
}

// Error summarises the panic; the stack is available on the struct.
func (e *TaskPanicError) Error() string {
	label := e.Label
	if label == "" {
		label = fmt.Sprintf("#%d", e.Index)
	}
	return fmt.Sprintf("harness: task %s (seed %d) panicked: %v", label, e.Seed, e.Value)
}

// parmap runs task(i) for i in [0, n) on up to `jobs` worker
// goroutines and returns the results indexed by i. With jobs <= 1 (or
// a single task) it degenerates to a serial loop on the calling
// goroutine — the legacy execution path, bit-for-bit. A panicking task
// does not crash the process from a worker goroutine: the first panic
// (by task index) is captured and re-raised on the caller once all
// workers drain.
func parmap[T any](jobs, n int, task func(i int) T) []T {
	return parmapObs("", nil, jobs, n, task)
}

// parmapObs is parmap with telemetry: when a collector is active and
// a namer is given, each task execution is wrapped in a span named
// name(i) of the given category, tagged with the pool slot that ran
// it and parented under the span open on the submitting goroutine —
// that is how experiment spans nest under the run and sub-run spans
// nest under their experiment. The pool.queued/pool.active gauges and
// the pool.tasks counter track slot occupancy. With no collector (or
// no namer) the telemetry path vanishes behind one atomic load and
// execution is exactly parmap's.
//
// Errors propagate by panic here: this is the nested form used by the
// sub-run fan-outs inside experiments, whose enclosing task is itself
// guarded by parmapErr. The top-level entry points use parmapErr
// directly and return the error instead.
func parmapObs[T any](cat string, name func(i int) string, jobs, n int, task func(i int) T) []T {
	out, err := parmapErr(cat, name, jobs, n, task)
	switch e := err.(type) {
	case nil:
		return out
	case *TaskPanicError:
		panic(e) // re-raised, caught (still tagged) one level up
	case *sim.AbortError:
		panic(e) // keep unwinding to the run boundary
	default:
		// A bare abort cause (context.Canceled, a deadline): re-wrap so
		// the enclosing pool recognises the unwind as a cancellation,
		// not a task bug.
		panic(&sim.AbortError{Err: e})
	}
}

// parmapErr is the guarded core of the pool: it runs the tasks like
// parmapObs and returns the first failure (by task index) as an error
// instead of panicking. On cancellation — the bound abort flag raised
// by a context watcher or by a failing sibling — pending tasks are
// skipped, in-flight tasks unwind via their engines' abort poll, and
// the abort cause is returned. Results are only meaningful when the
// error is nil.
func parmapErr[T any](cat string, name func(i int) string, jobs, n int, task func(i int) T) ([]T, error) {
	flag := sim.BoundAbort()
	led := BoundLedger()
	run := func(worker, i int) T { return task(i) }
	if ob := obs.Active(); ob != nil && name != nil {
		parent := ob.CurrentSpan()
		queued, active := ob.Gauge("pool.queued"), ob.Gauge("pool.active")
		tasks := ob.Counter("pool.tasks")
		// Per-task wall latency feeds the live p50/p95/p99 surfaces
		// (stream deltas, /metrics, the run manifest's summaries).
		latency := ob.Histogram("pool.task_latency_ns")
		queued.Add(int64(n))
		inner := run
		run = func(worker, i int) T {
			queued.Add(-1)
			active.Add(1)
			defer active.Add(-1)
			tasks.Add(1)
			t0 := time.Now()
			sp := ob.StartWorkerSpan(name(i), cat, worker, parent)
			defer func() {
				sp.End()
				latency.Observe(time.Since(t0).Nanoseconds())
			}()
			return inner(worker, i)
		}
	}
	if led != nil && name != nil {
		// Skip-completed fan-out (see ckpt.go): a ledger hit returns the
		// committed result without executing the task — outside the
		// telemetry wrapper, so pool.tasks counts only executed tasks and
		// no span opens for a skip; the pre-added queued gauge is
		// balanced by hand. A task that does run commits its result
		// before the merge. Ledger errors are swallowed: checkpointing is
		// an optimisation, never a correctness requirement.
		exec := run
		run = func(worker, i int) T {
			label := cat + "/" + name(i)
			if raw, ok := led.Lookup(label); ok {
				if v, ok := ckptDecode[T](raw); ok {
					obs.Active().Gauge("pool.queued").Add(-1)
					obs.Active().Counter("ckpt.hits").Add(1)
					return v
				}
			}
			v := exec(worker, i)
			if raw, ok := ckptEncode(any(v)); ok && led.Commit(label, raw) == nil {
				obs.Active().Counter("ckpt.commits").Add(1)
			}
			return v
		}
	}
	out := make([]T, n)
	errs := make([]error, n)
	// exec runs one task with the panic guard: an abort unwind is
	// recorded as the abort cause, any other panic becomes a tagged
	// *TaskPanicError that also cancels the remaining tasks.
	exec := func(worker, i int) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			switch p := r.(type) {
			case *sim.AbortError:
				errs[i] = p
			case *TaskPanicError:
				// Re-raised by a nested parmapObs: already tagged.
				errs[i] = p
				flag.Abort(p)
			default:
				tpe := &TaskPanicError{Index: i, Value: r, Stack: taskStack()}
				if name != nil {
					tpe.Label = name(i)
					tpe.Seed = taskSeedQuiet(tpe.Label)
				}
				errs[i] = tpe
				flag.Abort(tpe)
			}
		}()
		out[i] = run(worker, i)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if flag.Aborted() {
				break
			}
			exec(0, i)
			if errs[i] != nil {
				break
			}
		}
		return out, firstError(errs, flag)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if flag != nil {
				// Inherit the run's abort flag so engines (and nested
				// pools) created by this worker's tasks are cancellable.
				defer sim.BindAbort(flag)()
			}
			if led != nil {
				// Inherit the checkpoint ledger the same way, so nested
				// sub-run pools can skip and commit their own tasks.
				defer BindLedger(led)()
			}
			for i := range idx {
				exec(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if flag.Aborted() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, firstError(errs, flag)
}

// firstError picks the error parmapErr surfaces: the lowest-index
// task panic if any task panicked (deterministic at every -j for
// deterministic tasks), otherwise the abort cause when the run was
// cancelled, otherwise nil. Abort-unwind entries alone do not count
// as the root failure — they are the echo of the cancellation.
func firstError(errs []error, flag *sim.AbortFlag) error {
	var firstAbort error
	for _, err := range errs {
		switch e := err.(type) {
		case nil:
		case *TaskPanicError:
			return e
		default:
			if firstAbort == nil {
				firstAbort = err
			}
		}
	}
	if flag.Aborted() {
		err := flag.Err()
		if tpe, ok := err.(*TaskPanicError); ok {
			// A nested pool raised the flag with its task's panic but
			// the enclosing task's own error slot was lost (e.g. the
			// caller goroutine stopped issuing work): still surface it.
			return tpe
		}
		return err
	}
	return firstAbort
}

// taskStack captures the panicking goroutine's stack for a
// TaskPanicError.
func taskStack() []byte {
	buf := make([]byte, 64<<10)
	return buf[:runtime.Stack(buf, false)]
}

// TaskSeed derives a stable 64-bit seed from a path of labels
// (experiment ID, sub-run name, node count, ...) via FNV-1a. The seed
// depends only on the labels — never on worker count, scheduling
// order, or wall clock — which is what makes sampled experiments
// reproducible and independent of -j.
func TaskSeed(parts ...string) uint64 {
	seed := taskSeedQuiet(parts...)
	// Telemetry only: the run manifest lists every (label path, seed)
	// derivation so sampled experiments can be re-derived exactly. The
	// seed value itself never depends on the collector, and the label
	// join is only paid when a collector is attached.
	if ob := obs.Active(); ob != nil {
		ob.RecordSeed(strings.Join(parts, "/"), seed)
	}
	return seed
}

// taskSeedQuiet is TaskSeed without the manifest recording — used when
// tagging a TaskPanicError, where noting a seed that never drove a
// completed task would pollute the run manifest.
func taskSeedQuiet(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous separator: ("a","b") != ("ab")
	}
	return h.Sum64()
}

// TaskRNG returns a private rand.Rand for one task, seeded with
// TaskSeed(parts...). Each parallel task must draw from its own RNG:
// sharing one generator across workers would both race and make the
// draw order (hence the output) depend on scheduling.
func TaskRNG(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(TaskSeed(parts...))))
}

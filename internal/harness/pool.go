package harness

// Parallel experiment scheduling. The registry sweep in RunAll, the
// per-node-count sub-runs inside the cluster experiments, and the
// Monte-Carlo reduction in internal/reliability all funnel through the
// same bounded worker pool, and all obey one contract:
//
//   * every task owns its state — its own cluster (and therefore its
//     own sim.Engine) and, when it samples, its own RNG seeded by
//     TaskSeed — so tasks never share mutable data;
//   * results are merged in task-index order, never completion order,
//     so the rendered tables and CSV output of a parallel run are
//     byte-identical to the serial run.
//
// Jobs <= 1 takes the exact legacy path: a plain loop on the calling
// goroutine with no channels, no goroutines, no pool.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"

	"mobilehpc/internal/obs"
)

// parmap runs task(i) for i in [0, n) on up to `jobs` worker
// goroutines and returns the results indexed by i. With jobs <= 1 (or
// a single task) it degenerates to a serial loop on the calling
// goroutine — the legacy execution path, bit-for-bit. A panicking task
// does not crash the process from a worker goroutine: the first panic
// is captured and re-raised on the caller once all workers drain.
func parmap[T any](jobs, n int, task func(i int) T) []T {
	return parmapObs("", nil, jobs, n, task)
}

// parmapObs is parmap with telemetry: when a collector is active and
// a namer is given, each task execution is wrapped in a span named
// name(i) of the given category, tagged with the pool slot that ran
// it and parented under the span open on the submitting goroutine —
// that is how experiment spans nest under the run and sub-run spans
// nest under their experiment. The pool.queued/pool.active gauges and
// the pool.tasks counter track slot occupancy. With no collector (or
// no namer) the telemetry path vanishes behind one atomic load and
// execution is exactly parmap's.
func parmapObs[T any](cat string, name func(i int) string, jobs, n int, task func(i int) T) []T {
	run := func(worker, i int) T { return task(i) }
	if ob := obs.Active(); ob != nil && name != nil {
		parent := ob.CurrentSpan()
		queued, active := ob.Gauge("pool.queued"), ob.Gauge("pool.active")
		tasks := ob.Counter("pool.tasks")
		queued.Add(int64(n))
		run = func(worker, i int) T {
			queued.Add(-1)
			active.Add(1)
			defer active.Add(-1)
			tasks.Add(1)
			sp := ob.StartWorkerSpan(name(i), cat, worker, parent)
			defer sp.End()
			return task(i)
		}
	}
	out := make([]T, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = run(0, i)
		}
		return out
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicValue = r })
						}
					}()
					out[i] = run(worker, i)
				}()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicValue != nil {
		panic(fmt.Sprintf("harness: parallel task panicked: %v", panicValue))
	}
	return out
}

// TaskSeed derives a stable 64-bit seed from a path of labels
// (experiment ID, sub-run name, node count, ...) via FNV-1a. The seed
// depends only on the labels — never on worker count, scheduling
// order, or wall clock — which is what makes sampled experiments
// reproducible and independent of -j.
func TaskSeed(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous separator: ("a","b") != ("ab")
	}
	seed := h.Sum64()
	// Telemetry only: the run manifest lists every (label path, seed)
	// derivation so sampled experiments can be re-derived exactly. The
	// seed value itself never depends on the collector, and the label
	// join is only paid when a collector is attached.
	if ob := obs.Active(); ob != nil {
		ob.RecordSeed(strings.Join(parts, "/"), seed)
	}
	return seed
}

// TaskRNG returns a private rand.Rand for one task, seeded with
// TaskSeed(parts...). Each parallel task must draw from its own RNG:
// sharing one generator across workers would both race and make the
// draw order (hence the output) depend on scheduling.
func TaskRNG(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(TaskSeed(parts...))))
}

package harness

// Parallel experiment scheduling. The registry sweep in RunAll, the
// per-node-count sub-runs inside the cluster experiments, and the
// Monte-Carlo reduction in internal/reliability all funnel through the
// same bounded worker pool, and all obey one contract:
//
//   * every task owns its state — its own cluster (and therefore its
//     own sim.Engine) and, when it samples, its own RNG seeded by
//     TaskSeed — so tasks never share mutable data;
//   * results are merged in task-index order, never completion order,
//     so the rendered tables and CSV output of a parallel run are
//     byte-identical to the serial run.
//
// Jobs <= 1 takes the exact legacy path: a plain loop on the calling
// goroutine with no channels, no goroutines, no pool.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
)

// parmap runs task(i) for i in [0, n) on up to `jobs` worker
// goroutines and returns the results indexed by i. With jobs <= 1 (or
// a single task) it degenerates to a serial loop on the calling
// goroutine — the legacy execution path, bit-for-bit. A panicking task
// does not crash the process from a worker goroutine: the first panic
// is captured and re-raised on the caller once all workers drain.
func parmap[T any](jobs, n int, task func(i int) T) []T {
	out := make([]T, n)
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = task(i)
		}
		return out
	}
	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue any
	)
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicValue = r })
						}
					}()
					out[i] = task(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicValue != nil {
		panic(fmt.Sprintf("harness: parallel task panicked: %v", panicValue))
	}
	return out
}

// TaskSeed derives a stable 64-bit seed from a path of labels
// (experiment ID, sub-run name, node count, ...) via FNV-1a. The seed
// depends only on the labels — never on worker count, scheduling
// order, or wall clock — which is what makes sampled experiments
// reproducible and independent of -j.
func TaskSeed(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // unambiguous separator: ("a","b") != ("ab")
	}
	return h.Sum64()
}

// TaskRNG returns a private rand.Rand for one task, seeded with
// TaskSeed(parts...). Each parallel task must draw from its own RNG:
// sharing one generator across workers would both race and make the
// draw order (hence the output) depend on scheduling.
func TaskRNG(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(int64(TaskSeed(parts...))))
}

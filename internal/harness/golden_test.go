package harness

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"mobilehpc/internal/obs"
	"mobilehpc/internal/sim"
)

// Differential golden wall for the event-driven MPI runtime rewrite:
// the full-registry output stream is pinned byte-for-byte to testdata
// captures taken before the rewrite (park-per-protocol-step runtime,
// lazy-deletion cancel). Any change to event ordering, protocol
// timing, float evaluation order, or render formatting shows up here
// as a diff against the frozen bytes — at every jobs value, with and
// without telemetry attached.
//
// To regenerate after an *intentional* physics or formatting change:
//
//	go build -o /tmp/mhpc ./cmd/mhpc
//	/tmp/mhpc all -quick > internal/harness/testdata/golden-quick.txt
//	/tmp/mhpc all        > internal/harness/testdata/golden-full.txt
//
// and say why in the commit message.

// readGolden loads a testdata capture.
func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("missing golden capture: %v", err)
	}
	return string(b)
}

// diffLine reports the first line where got and want diverge, with
// context, so a golden break names the experiment at fault instead of
// dumping 28 KB.
func diffLine(t *testing.T, got, want string) {
	t.Helper()
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Errorf("first divergence at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			return
		}
	}
	t.Errorf("outputs diverge in length: got %d lines, want %d", len(gl), len(wl))
}

// goldenGrid is the jobs x intra matrix every golden test sweeps:
// serial and parallel task pools crossed with sequential and
// partitioned (conservative-PDES) engines. Intra partitioning is an
// engine implementation detail, so all twelve cells must render the
// same bytes the pre-rewrite sequential engine did. GOMAXPROCS is
// appended when it differs from the fixed jobs values so the
// one-worker-per-CPU configuration stays covered on larger machines.
func goldenGrid() (jobs, intra []int) {
	jobs = []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		jobs = append(jobs, p)
	}
	return jobs, []int{1, 2, 4}
}

// The quick registry stream must match the pre-rewrite capture at
// every jobs x intra cell of the grid.
func TestRunAllGoldenQuick(t *testing.T) {
	want := readGolden(t, "golden-quick.txt")
	jobsVals, intraVals := goldenGrid()
	for _, jobs := range jobsVals {
		for _, intra := range intraVals {
			t.Run(fmt.Sprintf("jobs=%d/intra=%d", jobs, intra), func(t *testing.T) {
				var out bytes.Buffer
				if err := RunAll(&out, Options{Quick: true, Jobs: jobs, Intra: intra}); err != nil {
					t.Fatal(err)
				}
				if out.String() != want {
					diffLine(t, out.String(), want)
				}
			})
		}
	}
}

// Attaching the full telemetry stack (collector + engine observer)
// must not perturb a single byte of the stream at any grid cell:
// observation is out-of-band by construction, including the PDES
// window/stall counters the partitioned engine emits.
func TestRunAllGoldenQuickTelemetry(t *testing.T) {
	want := readGolden(t, "golden-quick.txt")
	jobsVals, intraVals := goldenGrid()
	for _, jobs := range jobsVals {
		for _, intra := range intraVals {
			t.Run(fmt.Sprintf("jobs=%d/intra=%d", jobs, intra), func(t *testing.T) {
				c := obs.New()
				obs.SetActive(c)
				sim.SetDefaultObserver(obs.NewSimObserver(c))
				var out bytes.Buffer
				err := RunAll(&out, Options{Quick: true, Jobs: jobs, Intra: intra})
				sim.SetDefaultObserver(nil)
				obs.SetActive(nil)
				if err != nil {
					t.Fatal(err)
				}
				if out.String() != want {
					diffLine(t, out.String(), want)
				}
			})
		}
	}
}

// The full-size registry (the paper's real node counts) against its
// capture, with the sequential engine and with four PDES partitions.
// Skipped in -short: the race wall runs the quick goldens; the
// regular suite runs this one.
func TestRunAllGoldenFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry golden runs in the regular (non-short) suite")
	}
	want := readGolden(t, "golden-full.txt")
	for _, intra := range []int{1, 4} {
		t.Run(fmt.Sprintf("intra=%d", intra), func(t *testing.T) {
			var out bytes.Buffer
			if err := RunAll(&out, Options{Jobs: 4, Intra: intra}); err != nil {
				t.Fatal(err)
			}
			if out.String() != want {
				diffLine(t, out.String(), want)
			}
		})
	}
}

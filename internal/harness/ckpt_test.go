package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mobilehpc/internal/obs"
)

// memLedger is a test TaskLedger: a plain map plus an execution log.
type memLedger struct {
	mu      sync.Mutex
	m       map[string][]byte
	commits []string
}

func newMemLedger() *memLedger { return &memLedger{m: map[string][]byte{}} }

func (l *memLedger) Lookup(label string) ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, ok := l.m[label]
	return data, ok
}

func (l *memLedger) Commit(label string, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m[label] = data
	l.commits = append(l.commits, label)
	return nil
}

// TestPoolLedgerSkipsCommitted: with a bound ledger, a second parmap
// over the same labels returns identical results without executing a
// single task — committed progress is never recomputed.
func TestPoolLedgerSkipsCommitted(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		led := newMemLedger()
		unbind := BindLedger(led)
		var execs int64
		var mu sync.Mutex
		task := func(i int) []string {
			mu.Lock()
			execs++
			mu.Unlock()
			return []string{"row", string(rune('a' + i))}
		}
		name := func(i int) string { return "t" + string(rune('a'+i)) }

		first, err := parmapErr("subrun", name, jobs, 6, task)
		if err != nil {
			t.Fatal(err)
		}
		if execs != 6 || len(led.commits) != 6 {
			t.Fatalf("jobs=%d first pass: execs=%d commits=%d, want 6/6", jobs, execs, len(led.commits))
		}

		execs = 0
		second, err := parmapErr("subrun", name, jobs, 6, task)
		unbind()
		if err != nil {
			t.Fatal(err)
		}
		if execs != 0 {
			t.Fatalf("jobs=%d resume pass executed %d tasks, want 0", jobs, execs)
		}
		for i := range first {
			if strings.Join(first[i], "|") != strings.Join(second[i], "|") {
				t.Fatalf("jobs=%d result %d differs: %v vs %v", jobs, i, first[i], second[i])
			}
		}
	}
}

// TestPoolLedgerPartialResume: only some labels committed — exactly
// the missing ones execute, and the merged output is identical to an
// uninterrupted run.
func TestPoolLedgerPartialResume(t *testing.T) {
	led := newMemLedger()
	name := func(i int) string { return "t" + string(rune('a'+i)) }
	task := func(i int) []string { return []string{"v", string(rune('0' + i))} }

	full, err := parmapErr("subrun", name, 2, 5, task)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-commit tasks 0, 2, 4 as if a killed run got that far.
	unbind := BindLedger(led)
	defer unbind()
	for _, i := range []int{0, 2, 4} {
		raw, ok := ckptEncode(any(task(i)))
		if !ok {
			t.Fatal("encode failed")
		}
		led.Commit("subrun/"+name(i), raw)
	}
	var execd []string
	var mu sync.Mutex
	resumed, err := parmapErr("subrun", name, 2, 5, func(i int) []string {
		mu.Lock()
		execd = append(execd, name(i))
		mu.Unlock()
		return task(i)
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := strings.Join(execd, ",")
	mu.Unlock()
	if len(execd) != 2 || strings.Contains(got, "ta") || strings.Contains(got, "tc") || strings.Contains(got, "te") {
		t.Fatalf("resume executed %q, want exactly the uncommitted tb,td", got)
	}
	for i := range full {
		if strings.Join(full[i], "|") != strings.Join(resumed[i], "|") {
			t.Fatalf("result %d differs after resume: %v vs %v", i, full[i], resumed[i])
		}
	}
}

// TestPoolLedgerDecodeFailureReruns: a committed payload that no
// longer decodes (schema drift) must fall back to executing the task
// and overwrite the bad entry.
func TestPoolLedgerDecodeFailureReruns(t *testing.T) {
	led := newMemLedger()
	led.m["subrun/x"] = []byte("{not json")
	unbind := BindLedger(led)
	defer unbind()
	execs := 0
	out, err := parmapErr("subrun", func(int) string { return "x" }, 1, 1, func(i int) []string {
		execs++
		return []string{"fresh"}
	})
	if err != nil {
		t.Fatal(err)
	}
	if execs != 1 || out[0][0] != "fresh" {
		t.Fatalf("execs=%d out=%v, want re-execution", execs, out)
	}
	if raw, _ := led.Lookup("subrun/x"); string(raw) != `["fresh"]` {
		t.Fatalf("bad entry not overwritten: %q", raw)
	}
}

// TestPoolLedgerCountsSkipsNotTasks: pool.tasks counts only executed
// tasks; skips land in ckpt.hits and commits in ckpt.commits — the
// counter split the resume smoke asserts on.
func TestPoolLedgerCountsSkipsNotTasks(t *testing.T) {
	col := obs.New()
	obs.SetActive(col)
	defer obs.SetActive(nil)

	led := newMemLedger()
	unbind := BindLedger(led)
	defer unbind()
	name := func(i int) string { return "t" + string(rune('a'+i)) }
	task := func(i int) []string { return []string{"v"} }
	if _, err := parmapErr("subrun", name, 2, 4, task); err != nil {
		t.Fatal(err)
	}
	if _, err := parmapErr("subrun", name, 2, 4, task); err != nil {
		t.Fatal(err)
	}
	if got := col.Counter("pool.tasks").Value(); got != 4 {
		t.Errorf("pool.tasks = %d, want 4 (skips must not count as executions)", got)
	}
	if got := col.Counter("ckpt.hits").Value(); got != 4 {
		t.Errorf("ckpt.hits = %d, want 4", got)
	}
	if got := col.Counter("ckpt.commits").Value(); got != 4 {
		t.Errorf("ckpt.commits = %d, want 4", got)
	}
	if got := col.Gauge("pool.queued").Current(); got != 0 {
		t.Errorf("pool.queued = %d, want 0 after both passes", got)
	}
}

// TestTablesResumeByteIdentical drives the real registry: a quick
// fig6+green500 run committing into a ledger, then a resumed run from
// that ledger, must render byte-identical output at experiment level
// (table hits short-circuit the whole experiment) AND at sub-run
// level (experiment entries withheld, sub-run entries served).
func TestTablesResumeByteIdentical(t *testing.T) {
	ids := []string{"fig6", "green500"}
	opt := Options{Quick: true, Jobs: 2}
	render := func(tabs []*Table) string {
		var buf bytes.Buffer
		for _, tab := range tabs {
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	golden, err := Tables(ids, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := render(golden)

	led := newMemLedger()
	unbind := BindLedger(led)
	first, err := Tables(ids, opt)
	unbind()
	if err != nil {
		t.Fatal(err)
	}
	if render(first) != want {
		t.Fatal("ledger-committing run diverged from plain run")
	}
	if len(led.commits) == 0 {
		t.Fatal("no commits recorded")
	}

	// Full resume: experiment-level hits short-circuit everything.
	unbind = BindLedger(led)
	second, err := Tables(ids, opt)
	unbind()
	if err != nil {
		t.Fatal(err)
	}
	if render(second) != want {
		t.Fatal("experiment-level resume diverged")
	}

	// Sub-run-level resume: withhold the experiment tables so the
	// experiments re-merge from committed sub-run rows.
	sub := newMemLedger()
	for label, data := range led.m {
		if !strings.HasPrefix(label, "experiment/") {
			sub.m[label] = data
		}
	}
	unbind = BindLedger(sub)
	third, err := Tables(ids, opt)
	unbind()
	if err != nil {
		t.Fatal(err)
	}
	if render(third) != want {
		t.Fatal("sub-run-level resume diverged from uninterrupted run")
	}
}

package mobilehpc

// Documentation audit: every exported top-level identifier in the
// library must carry a doc comment. This enforces the documentation
// deliverable mechanically instead of by review.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEveryExportedIdentifierDocumented(t *testing.T) {
	var undocumented []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "examples" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					undocumented = append(undocumented,
						path+": func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc == nil {
							undocumented = append(undocumented,
								path+": type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						if !groupDoc && sp.Doc == nil && sp.Comment == nil {
							for _, n := range sp.Names {
								if n.IsExported() {
									undocumented = append(undocumented,
										path+": "+n.Name)
								}
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range undocumented {
		t.Errorf("undocumented exported identifier: %s", u)
	}
}

package mobilehpc

// Benchmarks for the extension systems: experiments beyond the paper's
// own tables/figures (projections, lessons-learned quantifications)
// plus ablations of runtime design choices.

import (
	"testing"

	"mobilehpc/internal/accel"
	"mobilehpc/internal/cluster"
	"mobilehpc/internal/kernels"
	"mobilehpc/internal/linalg"
	"mobilehpc/internal/mpi"
	"mobilehpc/internal/perf"
	"mobilehpc/internal/power"
	"mobilehpc/internal/reliability"
	"mobilehpc/internal/sched"
	"mobilehpc/internal/soc"
)

func BenchmarkProjectionARMv8(b *testing.B) {
	benchExperiment(b, "projection")
	profs := kernels.Profiles()
	base := perf.Suite(soc.Tegra2(), 1.0, profs, 1)
	v8 := perf.Suite(soc.ARMv8Quad(), 2.0, profs, 4)
	b.ReportMetric(base.MeanTime/v8.MeanTime, "armv8_speedup")
}

func BenchmarkReliabilityNoECC(b *testing.B) {
	benchExperiment(b, "reliability")
	low, _ := reliability.PaperHeadline()
	b.ReportMetric(low*100, "p1500_daily_pct")
}

func BenchmarkIOBottleneck(b *testing.B) {
	benchExperiment(b, "iobottleneck")
	b.ReportMetric(float64(cluster.TibidaboNFS().MaxNodesParallelIO(64<<20)), "max_parallel_nodes")
}

func BenchmarkEnergyCompare(b *testing.B) {
	benchExperiment(b, "energycompare")
}

func BenchmarkOpenMXAblation(b *testing.B) {
	benchExperiment(b, "ablation-openmx")
}

func BenchmarkBisectionAlltoall(b *testing.B) {
	benchExperiment(b, "bisection")
}

func BenchmarkGovernorAblation(b *testing.B) {
	benchExperiment(b, "governor")
	p := soc.Exynos5250()
	od := power.DefaultOndemand().Campaign(p, 2, 50, 0.5)
	pf := power.DefaultPerformance().Campaign(p, 2, 50, 0.5)
	b.ReportMetric((od.Time/pf.Time-1)*100, "ondemand_loss_pct")
}

func BenchmarkMicroserverCatalogue(b *testing.B) {
	benchExperiment(b, "microserver")
}

func BenchmarkAccelOffload(b *testing.B) {
	benchExperiment(b, "accel")
	var dmmm perf.Profile
	for _, k := range kernels.Suite() {
		if k.Tag() == "dmmm" {
			dmmm = k.Profile()
		}
	}
	s, err := accel.Speedup(soc.Exynos5250(), accel.Tegra5Logan(), dmmm, "fp32", 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s, "logan_fp32_speedup")
}

func BenchmarkStabilityCheckpointing(b *testing.B) {
	benchExperiment(b, "stability")
	mtbf := reliability.ClusterMTBFHours(96, 2, reliability.DIMMAnnualErrorLow,
		reliability.TibidaboPCIe())
	b.ReportMetric(mtbf, "tibidabo_mtbf_h")
}

// Collective-algorithm ablation: binomial vs linear broadcast and tree
// vs ring allreduce on 16 Tibidabo nodes.
func BenchmarkCollectiveAlgorithms(b *testing.B) {
	mk := func() *cluster.Cluster { return cluster.Tibidabo(16) }
	cases := []struct {
		name string
		prog func(r *mpi.Rank)
	}{
		{"bcast-binomial", func(r *mpi.Rank) {
			var v any
			if r.ID() == 0 {
				v = 1
			}
			r.Bcast(0, v, 64<<10)
		}},
		{"bcast-linear", func(r *mpi.Rank) {
			var v any
			if r.ID() == 0 {
				v = 1
			}
			r.BcastLinear(0, v, 64<<10)
		}},
		{"allreduce-tree", func(r *mpi.Rank) {
			r.AllreduceF64(1, func(a, c float64) float64 { return a + c })
		}},
		{"allreduce-ring", func(r *mpi.Rank) {
			r.AllreduceRingF64(1, func(a, c float64) float64 { return a + c })
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				end = mpi.Run(mk(), 16, c.prog)
			}
			b.ReportMetric(end*1e6, "sim_us")
		})
	}
}

// Scheduler ablation: FIFO vs backfill on a mixed campaign.
func BenchmarkSchedulerPolicies(b *testing.B) {
	mkJobs := func() []*sched.Job {
		return []*sched.Job{
			{ID: 1, Nodes: 24, Duration: 100, Submit: 0},
			{ID: 2, Nodes: 32, Duration: 60, Submit: 1},
			{ID: 3, Nodes: 4, Duration: 5, Submit: 2},
			{ID: 4, Nodes: 4, Duration: 5, Submit: 3},
			{ID: 5, Nodes: 8, Duration: 10, Submit: 4},
		}
	}
	for _, p := range []sched.Policy{sched.FIFO, sched.Backfill} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var res sched.Result
			for i := 0; i < b.N; i++ {
				res = sched.Simulate(32, mkJobs(), p)
			}
			b.ReportMetric(res.AvgWait, "avg_wait_s")
			b.ReportMetric(res.Utilisation*100, "util_pct")
		})
	}
}

// Blocking vs nonblocking halo exchange on the modelled fabric.
func BenchmarkOverlapAblation(b *testing.B) {
	const m = 4 << 20
	run := func(overlap bool) float64 {
		cl := cluster.Tibidabo(2)
		return mpi.Run(cl, 2, func(r *mpi.Rank) {
			if r.ID() == 0 {
				if overlap {
					req := r.Isend(1, 1, nil, m)
					r.Compute(0.05)
					req.Wait()
				} else {
					r.Send(1, 1, nil, m)
					r.Compute(0.05)
				}
			} else {
				r.Recv(0, 1)
			}
		})
	}
	for _, c := range []struct {
		name    string
		overlap bool
	}{{"blocking", false}, {"isend-overlap", true}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var end float64
			for i := 0; i < b.N; i++ {
				end = run(c.overlap)
			}
			b.ReportMetric(end*1e3, "sim_ms")
		})
	}
}

// Host-side autotuning probe (real wall-clock measurement by design).
func BenchmarkGemmAutotune(b *testing.B) {
	if testing.Short() {
		b.Skip("wall-clock probe")
	}
	var blk int
	for i := 0; i < b.N; i++ {
		blk = linalg.TuneGemm(128, 1).BlockSize
	}
	b.ReportMetric(float64(blk), "chosen_block")
}

# Verification gates for the mobilehpc reproduction. `make check` is
# the full wall a PR must clear: vet, build, the tier-1 test suite, and
# the race smoke pass that exercises the parallel experiment pool.
GO ?= go

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

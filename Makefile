# Verification gates for the mobilehpc reproduction. `make check` is
# the full wall a PR must clear: vet, build, the tier-1 test suite, the
# race smoke pass that exercises the parallel experiment pool (and the
# fault-injection package), the telemetry smoke run that proves the
# exporters emit valid JSON without perturbing stdout, the faults
# smoke run that proves a fault-injected sweep is byte-identical across
# -j and lands its injected events in the run manifest, and the serve
# smoke run that boots the real mhpcd binary and exercises cache,
# admission control, and SIGTERM drain over live HTTP, the stream
# smoke run that drives the async job plane — SSE telemetry deltas,
# job cancellation, and the Prometheus /metrics exposition — against
# the same real binary, the store smoke run that kills and restarts
# that binary on one -store-dir and requires every precomputed key to
# survive as a cache hit with zero re-executions, the load smoke
# run that replays a zipf request mix through cmd/mhpcload against a
# coalescing mhpcd and validates the resulting mhpc-load-report/v1,
# and the resume smoke run that SIGKILLs a checkpointing mhpc sweep
# mid-flight and requires the rerun to restore the committed progress
# with byte-identical output across -j and -intra.
GO ?= go
TMP ?= /tmp/mhpc-smoke

.PHONY: check vet build test race bench bench-smoke bench-snapshot bench-diff telemetry-smoke faults-smoke pdes-smoke serve-smoke stream-smoke store-smoke load-smoke resume-smoke

check: vet build test race telemetry-smoke faults-smoke pdes-smoke bench-smoke bench-diff serve-smoke stream-smoke store-smoke load-smoke resume-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fast anti-rot gate for the engine micro-benches: a fixed 100
# iterations (no timing claims, race off) proves they still compile and
# run. Part of `make check`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'EngineThroughput|TransferChunked' -benchtime 100x \
		./internal/sim ./internal/interconnect

# Perf trajectory snapshot: run the headline benches and record them in
# BENCH_v9.json (schema mhpc-bench-snapshot/v1; format documented in
# DESIGN.md, Engine performance). The engine/interconnect micro-benches
# and the obs scrape path get real benchtime; the multi-second macro
# benches — including the task-latency quantile bench, the serving
# tier's cache-cold zipf mix, and the 192-node PDES scaling sweep whose
# events/s metric records partitioned-engine throughput at P=1/2/4/8 —
# run a fixed few iterations.
bench-snapshot:
	rm -rf $(TMP)-bench && mkdir -p $(TMP)-bench
	$(GO) test -run '^$$' -bench 'EngineThroughput|TransferChunked|EventDispatch|ProcSwitch' \
		-benchmem ./internal/sim ./internal/interconnect > $(TMP)-bench/out.txt
	$(GO) test -run '^$$' -bench 'ScrapeRange|HistogramObserve' -benchmem ./internal/obs \
		>> $(TMP)-bench/out.txt
	$(GO) test -run '^$$' -bench 'RunAllJobs|Green500HPL|PoolTaskLatency|PDESScaling' -benchtime 1x -benchmem . \
		>> $(TMP)-bench/out.txt
	$(GO) test -run '^$$' -bench 'ServeZipfCold' -benchtime 3x -benchmem ./cmd/mhpcd \
		>> $(TMP)-bench/out.txt
	$(GO) run ./cmd/benchsnap -o BENCH_v9.json < $(TMP)-bench/out.txt
	$(GO) run ./cmd/jsoncheck BENCH_v9.json

# Perf regression gate over the committed snapshots: the v9 trajectory
# must hold the line against v8 — no throughput metric (events/s,
# chunks/s, req/s) down more than 10%, no steady-state bench newly
# allocating. Pure file comparison, so it is deterministic on any
# machine.
bench-diff:
	$(GO) run ./cmd/benchdiff BENCH_v8.json BENCH_v9.json

# End-to-end observability gate: run the full quick registry with every
# telemetry exporter on, validate both JSON artefacts, and re-check
# that stdout stayed byte-identical to the plain serial run.
telemetry-smoke:
	rm -rf $(TMP) && mkdir -p $(TMP)
	$(GO) build -o $(TMP)/mhpc ./cmd/mhpc
	$(TMP)/mhpc all -quick -j 4 -trace-out $(TMP)/trace.json -report $(TMP)/manifest.json > $(TMP)/out-telemetry.txt
	$(TMP)/mhpc all -quick -j 1 > $(TMP)/out-plain.txt
	cmp $(TMP)/out-telemetry.txt $(TMP)/out-plain.txt
	$(GO) run ./cmd/jsoncheck $(TMP)/trace.json $(TMP)/manifest.json

# End-to-end fault-injection gate: a short fault-sweep must be
# byte-identical at -j 4 vs serial with telemetry on, and the injected
# fault events (plus the replay's checkpoints and restarts) must land
# in the run manifest with non-zero counts.
faults-smoke:
	rm -rf $(TMP)-faults && mkdir -p $(TMP)-faults
	$(GO) build -o $(TMP)-faults/mhpc ./cmd/mhpc
	$(TMP)-faults/mhpc run -quick -j 4 -trace-out $(TMP)-faults/trace.json \
		-report $(TMP)-faults/manifest.json faultsweep > $(TMP)-faults/out-j4.txt
	$(TMP)-faults/mhpc run -quick -j 1 faultsweep > $(TMP)-faults/out-j1.txt
	cmp $(TMP)-faults/out-j4.txt $(TMP)-faults/out-j1.txt
	$(GO) run ./cmd/jsoncheck $(TMP)-faults/trace.json
	$(GO) run ./cmd/jsoncheck -counters faults.injected,faults.node_fail,faults.node_hang,faults.link_degrade,faults.checkpoints,faults.restarts \
		$(TMP)-faults/manifest.json

# Intra-run PDES gate: the quick registry rendered by the partitioned
# engine (-intra 2) must be byte-identical to the sequential engine's
# (-intra 1) — the conservative-window determinism proof, end to end
# through the real binary and its flag plumbing.
pdes-smoke:
	rm -rf $(TMP)-pdes && mkdir -p $(TMP)-pdes
	$(GO) build -o $(TMP)-pdes/mhpc ./cmd/mhpc
	$(TMP)-pdes/mhpc all -quick -intra 2 > $(TMP)-pdes/out-intra2.txt
	$(TMP)-pdes/mhpc all -quick -intra 1 > $(TMP)-pdes/out-intra1.txt
	cmp $(TMP)-pdes/out-intra2.txt $(TMP)-pdes/out-intra1.txt

# End-to-end serving gate: build and exec the real mhpcd binary, then
# drive it over HTTP — an uncached run, a byte-identical cached replay,
# a 429 under admission overflow, and a SIGTERM mid-flight that must
# drain (aborting the straggler through the cancellation path) and
# exit 0. Race mode on: the server's cache/singleflight/admission
# state is all shared-memory concurrent.
serve-smoke:
	MHPC_SERVE_SMOKE=1 $(GO) test -race -run TestServeSmoke -count=1 ./cmd/mhpcd

# End-to-end observability gate: against the same real binary, submit a
# quick-registry job on the async path, require >= 3 SSE telemetry
# deltas before the done event, resolve the content-addressed result
# key, cancel a full-fidelity straggler over HTTP, and scrape /metrics
# as Prometheus 0.0.4 text exposition. Race mode on: the stream plane
# shares the collector with every running job.
stream-smoke:
	MHPC_STREAM_SMOKE=1 $(GO) test -race -run TestStreamSmoke -count=1 ./cmd/mhpcd

# Durable-store gate: populate a disk-backed mhpcd, SIGTERM it,
# restart on the same -store-dir, and require store.recovered to match,
# every key to replay as a cache hit, and serve.runs to stay 0 in the
# second life — the kill-and-restart proof that nothing re-executes.
store-smoke:
	MHPC_STORE_SMOKE=1 $(GO) test -race -run TestStoreSmoke -count=1 ./cmd/mhpcd

# Load-replay gate: drive a coalescing (-batch-window 10ms) mhpcd with
# cmd/mhpcload's seeded zipf mix — open-loop arrivals, a client-abandon
# fraction — then require the emitted mhpc-load-report/v1 to pass both
# the in-test invariants and jsoncheck's schema validation of the
# exported artefact.
load-smoke:
	rm -rf $(TMP)-load && mkdir -p $(TMP)-load
	MHPC_LOAD_SMOKE=1 MHPC_LOAD_REPORT_OUT=$(TMP)-load/report.json \
		$(GO) test -race -run TestLoadSmoke -count=1 ./cmd/mhpcload
	$(GO) run ./cmd/jsoncheck $(TMP)-load/report.json

# Resumable-run gate: run a full-size fig6+green500 sweep with
# -ckpt-dir, SIGKILL it once the ledger holds committed sub-runs, and
# rerun the identical invocation at -j 1/4 x -intra 1/2 — stdout must
# match the uninterrupted run byte for byte, the manifest must show
# ckpt.hits > 0 and pool.tasks strictly below the golden total: the
# committed-progress-is-never-recomputed proof against the real binary.
resume-smoke:
	MHPC_RESUME_SMOKE=1 $(GO) test -race -run TestResumeSmoke -count=1 ./cmd/mhpc

# Verification gates for the mobilehpc reproduction. `make check` is
# the full wall a PR must clear: vet, build, the tier-1 test suite, the
# race smoke pass that exercises the parallel experiment pool, and the
# telemetry smoke run that proves the exporters emit valid JSON without
# perturbing stdout.
GO ?= go
TMP ?= /tmp/mhpc-smoke

.PHONY: check vet build test race bench telemetry-smoke

check: vet build test race telemetry-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# End-to-end observability gate: run the full quick registry with every
# telemetry exporter on, validate both JSON artefacts, and re-check
# that stdout stayed byte-identical to the plain serial run.
telemetry-smoke:
	rm -rf $(TMP) && mkdir -p $(TMP)
	$(GO) build -o $(TMP)/mhpc ./cmd/mhpc
	$(TMP)/mhpc all -quick -j 4 -trace-out $(TMP)/trace.json -report $(TMP)/manifest.json > $(TMP)/out-telemetry.txt
	$(TMP)/mhpc all -quick -j 1 > $(TMP)/out-plain.txt
	cmp $(TMP)/out-telemetry.txt $(TMP)/out-plain.txt
	$(GO) run ./cmd/jsoncheck $(TMP)/trace.json $(TMP)/manifest.json

module mobilehpc

go 1.22
